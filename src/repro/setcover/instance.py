"""Weighted set cover instances.

In the weighted set cover problem we are given ``n`` sets
``S_1, …, S_n ⊆ [m]`` with positive weights ``w_1, …, w_n`` and must find a
minimum-weight sub-collection covering the ground set ``[m]``.

The instance stores both the *primal* view (each set's elements) and the
*dual* view (for each element ``j``, the list ``T_j`` of sets containing it),
because the paper's ``f``-approximation operates on the dual representation
(Theorem 2.4) while the greedy ``(1+ε)·H_∆`` algorithm works on the primal
one (Section 4).

Both views are exposed as lazily-built CSR incidence indexes —
``(indptr, indices)`` array pairs via :meth:`SetCoverInstance.set_incidence`
and :meth:`SetCoverInstance.element_incidence` — which is what the
vectorized kernels in :mod:`repro.kernels` gather from.  ``sets_containing``
returns a slice of the dual index (set ids in increasing order, exactly as
the former per-element lists did).

The key structural parameters of Figure 1 are exposed as properties:

* ``frequency`` — ``f``, the largest number of sets containing any element;
* ``max_set_size`` — ``∆``, the size of the largest set;
* ``weight_ratio`` — ``w_max / w_min``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..mapreduce.exceptions import InfeasibleInstanceError

__all__ = ["SetCoverInstance"]


class SetCoverInstance:
    """An immutable weighted set cover instance.

    Parameters
    ----------
    sets:
        Iterable of element collections; ``sets[i]`` are the elements of
        ``S_i``.  Elements are integers in ``[0, num_elements)``.
    weights:
        Positive weight of each set.  Defaults to all ones.
    num_elements:
        Size ``m`` of the ground set.  Defaults to one plus the largest
        element mentioned.
    validate:
        When ``True`` (default), check element ranges, weight positivity,
        and that every element is coverable.
    """

    __slots__ = (
        "_sets",
        "_weights",
        "_m",
        "_set_sizes",
        "_set_indptr",
        "_set_indices",
        "_elem_indptr",
        "_elem_indices",
    )

    def __init__(
        self,
        sets: Iterable[Iterable[int]],
        weights: Sequence[float] | np.ndarray | None = None,
        *,
        num_elements: int | None = None,
        validate: bool = True,
    ):
        normalized: list[np.ndarray] = []
        max_element = -1
        for s in sets:
            arr = (
                np.unique(np.asarray(s, dtype=np.int64))
                if isinstance(s, np.ndarray)
                else np.unique(np.asarray(list(s), dtype=np.int64))
            )
            normalized.append(arr)
            if arr.size:
                max_element = max(max_element, int(arr.max()))
        self._sets = normalized
        m = (max_element + 1) if num_elements is None else int(num_elements)
        self._m = m
        n = len(normalized)
        if weights is None:
            w = np.ones(n, dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n,):
                raise ValueError("weights must have one entry per set")
        self._weights = w
        self._set_sizes = np.fromiter(
            (arr.size for arr in normalized), dtype=np.int64, count=n
        )
        self._set_indptr: np.ndarray | None = None
        self._set_indices: np.ndarray | None = None
        self._elem_indptr: np.ndarray | None = None
        self._elem_indices: np.ndarray | None = None
        if validate:
            if np.any(w <= 0) or np.any(~np.isfinite(w)):
                raise ValueError("set weights must be positive and finite")
            for arr in normalized:
                if arr.size and (arr.min() < 0 or arr.max() >= m):
                    raise ValueError("set element out of range")
            if m:
                _, indices = self.set_incidence()
                occurrences = np.bincount(indices, minlength=m)
                uncovered = np.flatnonzero(occurrences == 0)
                if uncovered.size:
                    raise InfeasibleInstanceError(
                        f"{uncovered.size} element(s) are contained in no set; "
                        f"first few: {uncovered[:5].tolist()}"
                    )

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        num_elements: int,
        validate: bool = False,
    ) -> "SetCoverInstance":
        """Build an instance directly from a primal CSR incidence index.

        This is the zero-copy trusted constructor used by the dataset store
        (:mod:`repro.datasets`): the caller asserts the index already
        satisfies the class invariants — ``indices[indptr[i]:indptr[i+1]]``
        sorted and duplicate-free per set, elements in range, every element
        covered — so no normalisation pass runs and (memory-mapped) input
        arrays of the right dtype are adopted as-is.  Pass ``validate=True``
        to check the invariants anyway.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or len(indptr) < 1:
            raise ValueError("indptr must be a non-empty 1-D array")
        n = len(indptr) - 1
        m = int(num_elements)
        if weights is None:
            w = np.ones(n, dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n,):
                raise ValueError("weights must have one entry per set")
        instance = cls.__new__(cls)
        instance._sets = [indices[indptr[i] : indptr[i + 1]] for i in range(n)]
        instance._weights = w
        instance._m = m
        instance._set_sizes = np.diff(indptr)
        instance._set_indptr = indptr
        instance._set_indices = indices
        instance._elem_indptr = None
        instance._elem_indices = None
        if validate:
            if np.any(instance._set_sizes < 0) or int(indptr[-1]) != len(indices):
                raise ValueError("indptr is not a valid monotone CSR pointer array")
            if np.any(w <= 0) or np.any(~np.isfinite(w)):
                raise ValueError("set weights must be positive and finite")
            if len(indices) and (indices.min() < 0 or indices.max() >= m):
                raise ValueError("set element out of range")
            for arr in instance._sets:
                if arr.size > 1 and np.any(np.diff(arr) <= 0):
                    raise ValueError("each set's elements must be sorted and unique")
            if m:
                occurrences = np.bincount(indices, minlength=m)
                uncovered = np.flatnonzero(occurrences == 0)
                if uncovered.size:
                    raise InfeasibleInstanceError(
                        f"{uncovered.size} element(s) are contained in no set; "
                        f"first few: {uncovered[:5].tolist()}"
                    )
        return instance

    # ------------------------------------------------------------------ #
    # CSR incidence indexes (lazily built)
    # ------------------------------------------------------------------ #
    def set_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Primal CSR index: ``indices[indptr[i]:indptr[i+1]]`` are ``S_i``'s elements."""
        if self._set_indptr is None:
            indptr = np.zeros(len(self._sets) + 1, dtype=np.int64)
            np.cumsum(self._set_sizes, out=indptr[1:])
            self._set_indptr = indptr
            self._set_indices = (
                np.concatenate(self._sets) if int(indptr[-1]) else np.empty(0, dtype=np.int64)
            )
        assert self._set_indices is not None
        return self._set_indptr, self._set_indices

    def element_incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """Dual CSR index: ``indices[indptr[j]:indptr[j+1]]`` are ``T_j``'s set ids.

        Within each element the set ids appear in increasing order (the
        stable sort preserves set-insertion order, which is id order).
        """
        if self._elem_indptr is None:
            set_indptr, set_indices = self.set_incidence()
            owners = np.repeat(np.arange(len(self._sets), dtype=np.int64), self._set_sizes)
            order = np.argsort(set_indices, kind="stable")
            indptr = np.zeros(self._m + 1, dtype=np.int64)
            if set_indices.size:
                np.cumsum(np.bincount(set_indices, minlength=self._m), out=indptr[1:])
            self._elem_indptr = indptr
            self._elem_indices = owners[order]
        assert self._elem_indices is not None
        return self._elem_indptr, self._elem_indices

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_sets(self) -> int:
        """Number of sets ``n``."""
        return len(self._sets)

    @property
    def num_elements(self) -> int:
        """Size of the ground set ``m``."""
        return self._m

    @property
    def weights(self) -> np.ndarray:
        """Set weights (read-only view)."""
        return self._weights

    def set_elements(self, set_id: int) -> np.ndarray:
        """Elements of ``S_{set_id}``."""
        return self._sets[set_id]

    def sets_containing(self, element: int) -> np.ndarray:
        """The dual list ``T_j``: ids of sets containing ``element``."""
        indptr, indices = self.element_incidence()
        return indices[indptr[element] : indptr[element + 1]]

    @property
    def set_sizes(self) -> np.ndarray:
        """``|S_i|`` for every set (read-only view)."""
        return self._set_sizes

    # ------------------------------------------------------------------ #
    # Structural parameters (Figure 1)
    # ------------------------------------------------------------------ #
    @property
    def frequency(self) -> int:
        """``f``: the maximum number of sets containing any single element."""
        if self._m == 0:
            return 0
        indptr, _ = self.element_incidence()
        counts = np.diff(indptr)
        return int(counts.max()) if counts.size else 0

    @property
    def max_set_size(self) -> int:
        """``∆``: the size of the largest set."""
        return int(self._set_sizes.max()) if self.num_sets else 0

    @property
    def weight_ratio(self) -> float:
        """``w_max / w_min``."""
        if self.num_sets == 0:
            return 1.0
        return float(self._weights.max() / self._weights.min())

    @property
    def total_size(self) -> int:
        """``Σ_i |S_i|`` — the input size ``N`` in the MRC accounting."""
        return int(self._set_sizes.sum())

    # ------------------------------------------------------------------ #
    # Solution helpers
    # ------------------------------------------------------------------ #
    def cover_weight(self, chosen: Iterable[int]) -> float:
        """Total weight of the sets with the given ids."""
        ids = np.asarray(sorted({int(i) for i in chosen}), dtype=np.int64)
        return float(self._weights[ids].sum()) if ids.size else 0.0

    def covered_elements(self, chosen: Iterable[int]) -> np.ndarray:
        """Boolean mask of the elements covered by the chosen sets."""
        mask = np.zeros(self._m, dtype=bool)
        for set_id in chosen:
            elems = self._sets[int(set_id)]
            if elems.size:
                mask[elems] = True
        return mask

    def is_cover(self, chosen: Iterable[int]) -> bool:
        """Return ``True`` if the chosen sets cover the entire ground set."""
        return bool(self.covered_elements(chosen).all()) if self._m else True

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_vertex_cover(cls, graph, vertex_weights: Sequence[float] | np.ndarray | None = None):
        """Encode weighted vertex cover as set cover with frequency ``f = 2``.

        Each vertex becomes a set containing its incident edges; each edge is
        an element contained in exactly its two endpoints' sets.
        """
        n = graph.num_vertices
        sets = [graph.incident_edges(v) for v in range(n)]
        weights = None if vertex_weights is None else np.asarray(vertex_weights, dtype=np.float64)
        isolated_ok = all(graph.incident_edges(v) is not None for v in range(n))
        assert isolated_ok
        return cls(sets, weights, num_elements=graph.num_edges, validate=True)

    def restricted_to_elements(self, elements: Iterable[int]) -> "SetCoverInstance":
        """Return the instance induced on a subset of elements (re-using element ids).

        Sets keep their ids and weights; only their element lists are
        intersected with ``elements``.  Elements outside the subset simply do
        not appear, so feasibility validation is skipped.
        """
        keep = np.zeros(self._m, dtype=bool)
        idx = np.asarray(list(elements), dtype=np.int64)
        if idx.size:
            keep[idx] = True
        new_sets = [arr[keep[arr]] if arr.size else arr for arr in self._sets]
        return SetCoverInstance(
            new_sets, self._weights.copy(), num_elements=self._m, validate=False
        )

    def word_count(self) -> int:
        """Model-level size in words: one word per (set, element) incidence plus weights."""
        return self.total_size + self.num_sets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetCoverInstance(n={self.num_sets}, m={self.num_elements}, "
            f"f={self.frequency}, delta={self.max_set_size})"
        )
