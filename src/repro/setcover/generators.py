"""Synthetic weighted set cover workloads.

Two regimes appear in the paper:

* the ``f``-approximation (Theorem 2.4) targets instances where the ground
  set is huge compared to the number of sets (``n ≪ m``, e.g. vertex cover
  where the elements are the edges), with every element appearing in at most
  ``f`` sets;
* the ``(1+ε) ln ∆`` greedy algorithm (Theorem 4.6) targets instances with
  ``m ≪ n`` and ``n = poly(m)``.

Generators for both regimes are provided, plus a couple of structured
instances with known optima that the tests use for exact approximation-ratio
checks.
"""

from __future__ import annotations

import numpy as np

from .instance import SetCoverInstance

__all__ = [
    "random_frequency_bounded_instance",
    "random_coverage_instance",
    "planted_partition_instance",
    "disjoint_groups_instance",
    "vertex_cover_instance",
]


def _random_weights(
    n: int, rng: np.random.Generator, weight_range: tuple[float, float]
) -> np.ndarray:
    lo, hi = weight_range
    return rng.uniform(lo, hi, size=n)


def random_frequency_bounded_instance(
    num_sets: int,
    num_elements: int,
    max_frequency: int,
    rng: np.random.Generator,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> SetCoverInstance:
    """An instance where every element lies in at most ``max_frequency`` sets.

    Each element independently chooses between 1 and ``max_frequency``
    distinct sets to belong to, so coverage is guaranteed and the frequency
    bound ``f`` holds exactly.  This is the workload for the
    ``f``-approximation experiments (``n ≪ m``).
    """
    if max_frequency < 1:
        raise ValueError("max_frequency must be at least 1")
    if num_sets < max_frequency:
        raise ValueError("need at least max_frequency sets")
    members: list[list[int]] = [[] for _ in range(num_sets)]
    for element in range(num_elements):
        k = int(rng.integers(1, max_frequency + 1))
        owners = rng.choice(num_sets, size=k, replace=False)
        for set_id in owners:
            members[int(set_id)].append(element)
    weights = _random_weights(num_sets, rng, weight_range)
    return SetCoverInstance(members, weights, num_elements=num_elements)


def random_coverage_instance(
    num_sets: int,
    num_elements: int,
    rng: np.random.Generator,
    *,
    density: float = 0.05,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> SetCoverInstance:
    """A dense-ish random instance for the greedy regime (``m ≪ n``).

    Each (set, element) incidence is present independently with probability
    ``density``; a final pass adds each uncovered element to one random set
    so the instance is feasible.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    incidence = rng.random((num_sets, num_elements)) < density
    uncovered = ~incidence.any(axis=0)
    for element in np.flatnonzero(uncovered):
        incidence[int(rng.integers(0, num_sets)), element] = True
    members = [np.flatnonzero(incidence[i]) for i in range(num_sets)]
    weights = _random_weights(num_sets, rng, weight_range)
    return SetCoverInstance(members, weights, num_elements=num_elements)


def planted_partition_instance(
    num_blocks: int,
    block_size: int,
    decoys_per_block: int,
    rng: np.random.Generator,
    *,
    cheap_weight: float = 1.0,
    decoy_weight: float = 0.8,
) -> SetCoverInstance:
    """An instance with a *known* optimal cover.

    The ground set is partitioned into ``num_blocks`` blocks of
    ``block_size`` elements.  For each block there is one "planted" set
    covering the whole block at weight ``cheap_weight``, plus
    ``decoys_per_block`` sets each covering a strict random subset at weight
    ``decoy_weight``.  Choosing all planted sets is optimal whenever
    ``decoy_weight > cheap_weight / 2`` (a decoy never covers a full block,
    so at least two sets per block are needed otherwise); the optimum value
    ``num_blocks * cheap_weight`` is returned by
    :meth:`SetCoverInstance.cover_weight` on ``range(num_blocks)``.
    """
    if block_size < 2:
        raise ValueError("block_size must be at least 2 so decoys are strictly partial")
    sets: list[np.ndarray] = []
    weights: list[float] = []
    m = num_blocks * block_size
    for block in range(num_blocks):
        lo = block * block_size
        block_elements = np.arange(lo, lo + block_size)
        sets.append(block_elements)
        weights.append(cheap_weight)
    for block in range(num_blocks):
        lo = block * block_size
        block_elements = np.arange(lo, lo + block_size)
        for _ in range(decoys_per_block):
            size = int(rng.integers(1, block_size))
            subset = rng.choice(block_elements, size=size, replace=False)
            sets.append(subset)
            weights.append(decoy_weight)
    return SetCoverInstance(sets, np.asarray(weights), num_elements=m)


def disjoint_groups_instance(
    num_groups: int, group_size: int, *, weight: float = 1.0
) -> SetCoverInstance:
    """The trivial instance of disjoint sets (optimum = all sets, f = 1)."""
    sets = [np.arange(g * group_size, (g + 1) * group_size) for g in range(num_groups)]
    weights = np.full(num_groups, weight)
    return SetCoverInstance(sets, weights, num_elements=num_groups * group_size)


def vertex_cover_instance(
    graph,
    rng: np.random.Generator | None = None,
    *,
    weight_range: tuple[float, float] = (1.0, 10.0),
    vertex_weights: np.ndarray | None = None,
) -> tuple[SetCoverInstance, np.ndarray]:
    """Encode weighted vertex cover on ``graph`` as a frequency-2 set cover instance.

    Returns the instance and the vertex weight vector used.
    """
    n = graph.num_vertices
    if vertex_weights is None:
        if rng is None:
            vertex_weights = np.ones(n, dtype=np.float64)
        else:
            vertex_weights = _random_weights(n, rng, weight_range)
    instance = SetCoverInstance.from_vertex_cover(graph, vertex_weights)
    return instance, np.asarray(vertex_weights, dtype=np.float64)
