"""Result objects shared by the core algorithms.

Every algorithm returns a small dataclass carrying (i) the solution, (ii) the
objective value, and (iii) a per-iteration trace (:class:`IterationStats`)
recording the quantities that drive the MapReduce round/space accounting:
how many items were still alive, how many were sampled, and how many words
the sampled data occupies on the central machine.

The MPC drivers in ``*/mapreduce_impl.py`` replay these traces against an
:class:`~repro.mapreduce.engine.MPCContext` to produce the
:class:`~repro.mapreduce.metrics.RunMetrics` used by the Figure 1 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "IterationStats",
    "SetCoverResult",
    "MatchingResult",
    "IndependentSetResult",
    "CliqueResult",
    "ColouringResult",
]


@dataclass(frozen=True)
class IterationStats:
    """Statistics of one sampling iteration of a randomized algorithm.

    Parameters
    ----------
    iteration:
        One-based iteration counter.
    alive:
        Number of alive items (uncovered elements, positive-weight edges,
        heavy vertices, …) at the start of the iteration.
    sampled:
        Number of items included in the iteration's random sample.
    sample_words:
        Words shipped to the central machine for this iteration (the sample
        together with whatever per-item payload it carries).
    selected:
        Number of items the central machine added to the solution / stack
        during the iteration.
    phase:
        Optional label used when an algorithm has nested loops (e.g. the
        bucket index of Algorithm 3 or the degree class of Algorithm 6).
    """

    iteration: int
    alive: int
    sampled: int
    sample_words: int
    selected: int = 0
    phase: str = ""


@dataclass
class SetCoverResult:
    """Result of a set cover / vertex cover algorithm."""

    chosen_sets: list[int]
    weight: float
    iterations: list[IterationStats] = field(default_factory=list)
    failed_attempts: int = 0
    algorithm: str = ""

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


@dataclass
class MatchingResult:
    """Result of a (b-)matching algorithm."""

    edge_ids: list[int]
    weight: float
    iterations: list[IterationStats] = field(default_factory=list)
    stack_size: int = 0
    failed_attempts: int = 0
    algorithm: str = ""

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


@dataclass
class IndependentSetResult:
    """Result of a maximal independent set algorithm."""

    vertices: list[int]
    iterations: list[IterationStats] = field(default_factory=list)
    algorithm: str = ""

    @property
    def size(self) -> int:
        return len(self.vertices)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)


@dataclass
class CliqueResult:
    """Result of a maximal clique algorithm."""

    vertices: list[int]
    iterations: list[IterationStats] = field(default_factory=list)
    algorithm: str = ""

    @property
    def size(self) -> int:
        return len(self.vertices)


@dataclass
class ColouringResult:
    """Result of a vertex or edge colouring algorithm.

    ``colours`` maps the item id (vertex id or edge id) to its colour; for
    the MapReduce colouring algorithms colours are ``(group, local colour)``
    pairs, exactly as in Algorithm 5.
    """

    colours: dict[int, object]
    num_groups: int = 1
    iterations: list[IterationStats] = field(default_factory=list)
    algorithm: str = ""

    @property
    def num_colours(self) -> int:
        return len(set(self.colours.values()))

    def as_array(self, size: int | None = None) -> np.ndarray:
        """Return colours re-indexed to consecutive integers ``0..k-1``."""
        size = len(self.colours) if size is None else size
        palette = {colour: idx for idx, colour in enumerate(sorted(set(self.colours.values()), key=repr))}
        out = np.full(size, -1, dtype=np.int64)
        for item, colour in self.colours.items():
            out[item] = palette[colour]
        return out
