"""MapReduce (MPC) drivers for the colouring algorithms (Theorems 6.4 and 6.6).

The colouring algorithms use a constant number of rounds regardless of the
input parameters:

1. one parallel round in which every vertex (resp. edge) learns its random
   group and ships its within-group adjacency to the machine responsible for
   that group;
2. one parallel round in which each group machine colours its subgraph
   locally (greedy ``∆_i + 1`` colouring for vertices, Misra–Gries for
   edges) and outputs ``(group, local colour)`` pairs.

A preliminary round checks the failure condition ``|E_i| ≤ 13·n^{1+µ}``
(Lemma 6.2) by aggregating group edge counts.
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ...mapreduce.cluster import Cluster
from ...mapreduce.engine import MPCContext
from ...mapreduce.metrics import RunMetrics
from ..results import ColouringResult
from .edge_colouring import mapreduce_edge_colouring
from .vertex_colouring import default_num_groups, mapreduce_vertex_colouring

__all__ = ["mpc_vertex_colouring", "mpc_edge_colouring"]

#: Constant-factor slack on the O(n^{1+µ}) space bound, matching Lemma 6.2's 13.
SPACE_SLACK = 16.0


def _colour_cluster(graph: Graph, mu: float, kappa: int) -> tuple[Cluster, int]:
    n = max(2, graph.num_vertices)
    memory = int(np.ceil(SPACE_SLACK * n ** (1.0 + mu)))
    num_machines = max(kappa, 1)
    return Cluster(num_machines, memory), memory


def mpc_vertex_colouring(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    num_groups: int | None = None,
    strict: bool = True,
) -> tuple[ColouringResult, RunMetrics]:
    """Theorem 6.4: ``(1 + o(1))∆`` vertex colouring in ``O(1)`` rounds."""
    kappa = default_num_groups(graph, mu) if num_groups is None else max(1, int(num_groups))
    result = mapreduce_vertex_colouring(graph, mu, rng, num_groups=kappa)
    cluster, _ = _colour_cluster(graph, mu, result.num_groups)
    ctx = MPCContext(cluster, algorithm="mpc-vertex-colouring", strict=strict)
    group_loads = np.array(
        [stats.sample_words for stats in result.iterations], dtype=np.int64
    )
    if group_loads.size < cluster.num_machines:
        group_loads = np.pad(group_loads, (0, cluster.num_machines - group_loads.size))
    ctx.parallel_round(
        "assign groups and check |E_i| ≤ 13·n^(1+µ)",
        phase="partition",
        machine_loads=group_loads,
        words_communicated=graph.num_vertices,
        messages=graph.num_vertices,
    )
    ctx.parallel_round(
        "ship within-group adjacency lists N(v) ∩ V_i to group machines",
        phase="partition",
        machine_loads=group_loads,
        words_communicated=int(group_loads.sum()),
        messages=graph.num_vertices,
    )
    ctx.parallel_round(
        "greedy (∆_i + 1)-colouring inside each group; emit (i, c_i(v))",
        phase="colour",
        machine_loads=group_loads,
        words_communicated=graph.num_vertices,
        messages=graph.num_vertices,
    )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        kappa=result.num_groups,
        max_degree=graph.max_degree(),
        colours_used=result.num_colours,
    )
    return result, metrics


def mpc_edge_colouring(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    num_groups: int | None = None,
    local_algorithm: str = "misra-gries",
    strict: bool = True,
) -> tuple[ColouringResult, RunMetrics]:
    """Theorem 6.6: ``(1 + o(1))∆`` edge colouring in ``O(1)`` rounds."""
    kappa = default_num_groups(graph, mu) if num_groups is None else max(1, int(num_groups))
    result = mapreduce_edge_colouring(
        graph, mu, rng, num_groups=kappa, local_algorithm=local_algorithm
    )
    cluster, _ = _colour_cluster(graph, mu, max(1, result.num_groups))
    ctx = MPCContext(cluster, algorithm="mpc-edge-colouring", strict=strict)
    group_loads = np.array(
        [stats.sample_words for stats in result.iterations], dtype=np.int64
    )
    if group_loads.size < cluster.num_machines:
        group_loads = np.pad(group_loads, (0, cluster.num_machines - group_loads.size))
    ctx.parallel_round(
        "assign edge groups and check group sizes",
        phase="partition",
        machine_loads=group_loads,
        words_communicated=graph.num_edges,
        messages=graph.num_edges,
    )
    ctx.parallel_round(
        "ship group subgraphs to group machines",
        phase="partition",
        machine_loads=group_loads,
        words_communicated=int(group_loads.sum()),
        messages=graph.num_edges,
    )
    ctx.parallel_round(
        f"local {local_algorithm} colouring inside each group; emit (i, c_i(e))",
        phase="colour",
        machine_loads=group_loads,
        words_communicated=graph.num_edges,
        messages=graph.num_edges,
    )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        kappa=result.num_groups,
        max_degree=graph.max_degree(),
        colours_used=result.num_colours,
    )
    return result, metrics
