"""Algorithm 5 — ``(1 + o(1))∆`` vertex colouring in ``O(1)`` MapReduce rounds.

Section 6 of the paper.  The vertex set is partitioned uniformly at random
into ``κ = n^{(c−µ)/2}`` groups.  With high probability each group's induced
subgraph has maximum degree ``(1 + o(1))∆/κ`` (Lemma 6.1) and at most
``13·n^{1+µ}`` edges (Lemma 6.2), so it fits on one machine and can be
coloured greedily with ``∆_i + 1`` colours.  A vertex's final colour is the
pair ``(group, colour within the group)``, giving at most
``κ·(max_i ∆_i + 1) = (1 + o(1))∆`` colours in total (Corollary 6.3,
Theorem 6.4).
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ...mapreduce.exceptions import AlgorithmFailureError
from ..results import ColouringResult, IterationStats

__all__ = ["mapreduce_vertex_colouring", "greedy_vertex_colouring", "default_num_groups"]

#: Failure threshold of Line 4 of Algorithm 5 (``|E_i| > 13·n^{1+µ}``).
EDGE_FAILURE_MULTIPLIER = 13.0


def default_num_groups(graph: Graph, mu: float) -> int:
    """The paper's group count ``κ = n^{(c−µ)/2}`` (at least 1)."""
    n = graph.num_vertices
    if n <= 1:
        return 1
    c = graph.densification_exponent()
    exponent = max(0.0, (c - mu) / 2.0)
    return max(1, int(round(n**exponent)))


def greedy_vertex_colouring(
    graph: Graph,
    vertices: np.ndarray | None = None,
    order: np.ndarray | None = None,
) -> dict[int, int]:
    """Sequential greedy (first-fit) colouring of the induced subgraph on ``vertices``.

    Uses at most ``∆' + 1`` colours where ``∆'`` is the maximum degree of the
    induced subgraph.  Colours are integers starting at 0.
    """
    if vertices is None:
        vertices = np.arange(graph.num_vertices)
    vertices = np.asarray(vertices, dtype=np.int64)
    member = np.zeros(graph.num_vertices, dtype=bool)
    member[vertices] = True
    if order is None:
        order = vertices
    colours: dict[int, int] = {}
    for v in order:
        v = int(v)
        taken = {
            colours[int(w)]
            for w in graph.neighbors(v)
            if member[w] and int(w) in colours
        }
        colour = 0
        while colour in taken:
            colour += 1
        colours[v] = colour
    return colours


def mapreduce_vertex_colouring(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    num_groups: int | None = None,
    on_failure: str = "resample",
    max_failures: int = 20,
) -> ColouringResult:
    """Run Algorithm 5 on ``graph`` with space parameter ``µ``.

    Parameters
    ----------
    graph:
        The input graph.
    mu:
        Space exponent; each group's subgraph must fit in ``O(n^{1+µ})``
        words.
    rng:
        Randomness source for the random partition.
    num_groups:
        Number of groups ``κ``; defaults to ``n^{(c−µ)/2}``.
    on_failure:
        ``"resample"`` draws a fresh partition if some group has more than
        ``13·n^{1+µ}`` edges; ``"raise"`` raises
        :class:`AlgorithmFailureError`.
    max_failures:
        Cap on consecutive resampling attempts.

    Returns
    -------
    ColouringResult
        A proper colouring whose colours are ``(group, local colour)`` pairs;
        ``iterations`` holds one record per group with the group's edge count
        (``alive``) and the words it occupies on its machine
        (``sample_words``).
    """
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if on_failure not in ("resample", "raise"):
        raise ValueError("on_failure must be 'resample' or 'raise'")
    n = graph.num_vertices
    if n == 0:
        return ColouringResult({}, num_groups=0, algorithm="mapreduce-vertex-colouring")
    kappa = default_num_groups(graph, mu) if num_groups is None else max(1, int(num_groups))
    edge_budget = EDGE_FAILURE_MULTIPLIER * float(n) ** (1.0 + mu)

    attempts = 0
    while True:
        attempts += 1
        group_of = rng.integers(0, kappa, size=n)
        edge_groups_u = group_of[graph.edge_u]
        edge_groups_v = group_of[graph.edge_v]
        internal = edge_groups_u == edge_groups_v
        group_edge_counts = np.bincount(edge_groups_u[internal], minlength=kappa)
        if group_edge_counts.size == 0 or group_edge_counts.max() <= edge_budget:
            break
        if on_failure == "raise":
            raise AlgorithmFailureError(
                f"a group has {int(group_edge_counts.max())} edges, "
                f"exceeding 13·n^(1+µ) = {edge_budget:.0f}"
            )
        if attempts >= max_failures:
            raise AlgorithmFailureError(
                f"vertex partition failed {attempts} consecutive times"
            )

    colours: dict[int, object] = {}
    iterations: list[IterationStats] = []
    for group in range(kappa):
        members = np.flatnonzero(group_of == group)
        local = greedy_vertex_colouring(graph, vertices=members)
        for v in members:
            colours[int(v)] = (group, local[int(v)])
        edge_count = int(group_edge_counts[group]) if group < group_edge_counts.size else 0
        iterations.append(
            IterationStats(
                iteration=group + 1,
                alive=edge_count,
                sampled=int(members.size),
                sample_words=int(members.size) + 2 * edge_count,
                selected=len(set(local.values())),
                phase=f"group-{group}",
            )
        )
    return ColouringResult(
        colours=colours,
        num_groups=kappa,
        iterations=iterations,
        algorithm="mapreduce-vertex-colouring",
    )
