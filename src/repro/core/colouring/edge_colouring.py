"""``(1 + o(1))∆`` edge colouring in ``O(1)`` MapReduce rounds (Theorem 6.6).

Remark 6.5 of the paper: the vertex colouring algorithm carries over to edge
colouring almost verbatim — partition the *edges* uniformly at random into
``κ`` groups, and colour each group's subgraph with the Misra–Gries
constructive proof of Vizing's theorem, which uses at most ``∆_i + 1``
colours where ``∆_i`` is the maximum degree of the group's subgraph.  With
``κ = n^{(c−µ)/2}`` the per-group degree is ``(1 + o(1))∆/κ`` w.h.p., so the
pairs ``(group, local colour)`` form a proper edge colouring with
``(1 + o(1))∆`` colours.
"""

from __future__ import annotations

import numpy as np

from ...baselines.misra_gries import misra_gries_edge_colouring
from ...graphs.graph import Graph
from ...mapreduce.exceptions import AlgorithmFailureError
from ..results import ColouringResult, IterationStats
from .vertex_colouring import EDGE_FAILURE_MULTIPLIER, default_num_groups

__all__ = ["mapreduce_edge_colouring", "greedy_edge_colouring"]


def greedy_edge_colouring(graph: Graph, edge_ids: np.ndarray | None = None) -> dict[int, int]:
    """First-fit greedy edge colouring of the given edges (≤ 2∆ − 1 colours).

    A simpler (weaker) alternative to Misra–Gries used by tests as a
    cross-check; colours are integers starting at 0.
    """
    if edge_ids is None:
        edge_ids = np.arange(graph.num_edges)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    colour_of: dict[int, int] = {}
    incident_colours: dict[int, set[int]] = {}
    for e in edge_ids:
        e = int(e)
        u, v = graph.edge_endpoints(e)
        taken = incident_colours.get(u, set()) | incident_colours.get(v, set())
        colour = 0
        while colour in taken:
            colour += 1
        colour_of[e] = colour
        incident_colours.setdefault(u, set()).add(colour)
        incident_colours.setdefault(v, set()).add(colour)
    return colour_of


def mapreduce_edge_colouring(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    num_groups: int | None = None,
    local_algorithm: str = "misra-gries",
    on_failure: str = "resample",
    max_failures: int = 20,
) -> ColouringResult:
    """Randomly partition the edges into ``κ`` groups and colour each locally.

    Parameters
    ----------
    graph:
        The input graph.
    mu:
        Space exponent; each group must fit in ``O(n^{1+µ})`` words.
    rng:
        Randomness source.
    num_groups:
        Number of groups ``κ`` (defaults to ``n^{(c−µ)/2}``).
    local_algorithm:
        ``"misra-gries"`` (``∆_i + 1`` colours per group, the paper's choice)
        or ``"greedy"`` (``2∆_i − 1`` colours, faster).
    on_failure / max_failures:
        Handling of oversized groups, as in the vertex colouring driver.

    Returns
    -------
    ColouringResult
        A proper edge colouring with ``(group, local colour)`` colours.
    """
    if local_algorithm not in ("misra-gries", "greedy"):
        raise ValueError("local_algorithm must be 'misra-gries' or 'greedy'")
    if on_failure not in ("resample", "raise"):
        raise ValueError("on_failure must be 'resample' or 'raise'")
    n, m = graph.num_vertices, graph.num_edges
    if m == 0:
        return ColouringResult({}, num_groups=0, algorithm="mapreduce-edge-colouring")
    kappa = default_num_groups(graph, mu) if num_groups is None else max(1, int(num_groups))
    edge_budget = EDGE_FAILURE_MULTIPLIER * float(max(2, n)) ** (1.0 + mu)

    attempts = 0
    while True:
        attempts += 1
        group_of = rng.integers(0, kappa, size=m)
        counts = np.bincount(group_of, minlength=kappa)
        if counts.max() <= edge_budget:
            break
        if on_failure == "raise":
            raise AlgorithmFailureError(
                f"a group has {int(counts.max())} edges, exceeding {edge_budget:.0f}"
            )
        if attempts >= max_failures:
            raise AlgorithmFailureError(f"edge partition failed {attempts} consecutive times")

    colours: dict[int, object] = {}
    iterations: list[IterationStats] = []
    for group in range(kappa):
        members = np.flatnonzero(group_of == group)
        if members.size == 0:
            continue
        subgraph = graph.subgraph_of_edges(members)
        if local_algorithm == "misra-gries":
            local = misra_gries_edge_colouring(subgraph)
        else:
            local = greedy_edge_colouring(subgraph)
        # ``subgraph`` preserves edge order, so local edge id k corresponds to
        # the original edge ``members[k]``.
        for local_id, original_id in enumerate(members):
            colours[int(original_id)] = (group, local[local_id])
        iterations.append(
            IterationStats(
                iteration=group + 1,
                alive=int(members.size),
                sampled=int(members.size),
                sample_words=3 * int(members.size),
                selected=len({local[k] for k in range(members.size)}),
                phase=f"group-{group}",
            )
        )
    return ColouringResult(
        colours=colours,
        num_groups=kappa,
        iterations=iterations,
        algorithm="mapreduce-edge-colouring",
    )
