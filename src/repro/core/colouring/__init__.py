"""Vertex and edge colouring algorithms (Section 6)."""

from .edge_colouring import greedy_edge_colouring, mapreduce_edge_colouring
from .mapreduce_impl import mpc_edge_colouring, mpc_vertex_colouring
from .vertex_colouring import (
    default_num_groups,
    greedy_vertex_colouring,
    mapreduce_vertex_colouring,
)

__all__ = [
    "mapreduce_vertex_colouring",
    "mapreduce_edge_colouring",
    "greedy_vertex_colouring",
    "greedy_edge_colouring",
    "default_num_groups",
    "mpc_vertex_colouring",
    "mpc_edge_colouring",
]
