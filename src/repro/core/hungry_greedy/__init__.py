"""Hungry-greedy algorithms (Sections 3, 4 and Appendices A, B)."""

from .mapreduce_impl import (
    mpc_greedy_set_cover,
    mpc_maximal_clique,
    mpc_maximal_independent_set,
    mpc_maximal_independent_set_simple,
    mpc_parameters_for_greedy_set_cover,
)
from .maximal_clique import hungry_greedy_maximal_clique, sequential_greedy_maximal_clique
from .mis import hungry_greedy_mis, sequential_greedy_mis
from .mis_improved import hungry_greedy_mis_improved
from .set_cover import hungry_greedy_set_cover, preprocess_weights
from .state import MISState

__all__ = [
    "hungry_greedy_mis",
    "hungry_greedy_mis_improved",
    "sequential_greedy_mis",
    "hungry_greedy_maximal_clique",
    "sequential_greedy_maximal_clique",
    "hungry_greedy_set_cover",
    "preprocess_weights",
    "MISState",
    "mpc_maximal_independent_set",
    "mpc_maximal_independent_set_simple",
    "mpc_maximal_clique",
    "mpc_greedy_set_cover",
    "mpc_parameters_for_greedy_set_cover",
]
