"""Incremental bookkeeping shared by the hungry-greedy graph algorithms.

Both MIS variants (Algorithms 2 and 6) and the maximal clique algorithm need
to maintain, as vertices join the solution, the *residual degree*
``d_I(v) = |N(v) \\ N⁺(I)|`` of every vertex — the number of neighbours that
are neither in the solution nor adjacent to it.  Recomputing this from
scratch after every insertion would cost ``O(m)`` per insertion;
:class:`MISState` maintains it incrementally in time proportional to the
neighbourhoods of the vertices that become blocked.
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ...kernels import blocked_degree_decrements

__all__ = ["MISState"]


class MISState:
    """Incremental state for independent-set style hungry-greedy algorithms.

    Attributes
    ----------
    in_set:
        Boolean mask of vertices currently in the independent set ``I``.
    blocked:
        Boolean mask of ``N⁺(I)`` — vertices in ``I`` or adjacent to it.
    degrees:
        ``d_I(v)`` for every vertex (0 for blocked vertices).
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        n = graph.num_vertices
        self.in_set = np.zeros(n, dtype=bool)
        self.blocked = np.zeros(n, dtype=bool)
        self.degrees = graph.degrees().astype(np.int64).copy()

    # ------------------------------------------------------------------ #
    def add(self, vertex: int) -> None:
        """Add ``vertex`` to ``I`` and update ``blocked`` / ``degrees``.

        ``vertex`` must currently be unblocked.
        """
        v = int(vertex)
        if self.blocked[v]:
            raise ValueError(f"vertex {v} is already blocked and cannot join the independent set")
        self.in_set[v] = True
        neighbours = self.graph.neighbors(v)
        unblocked_neighbours = neighbours[~self.blocked[neighbours]] if neighbours.size else neighbours
        newly_blocked = np.concatenate(([v], unblocked_neighbours)).astype(np.int64)
        self.blocked[newly_blocked] = True
        # Each unblocked neighbour of a newly blocked vertex loses one
        # residual neighbour; blocked vertices themselves drop to degree 0.
        adj_indptr, adj_indices = self.graph.adjacency()
        blocked_degree_decrements(
            adj_indptr, adj_indices, newly_blocked, self.blocked, self.degrees
        )

    def add_all(self, vertices) -> None:
        """Add every (still unblocked) vertex in ``vertices`` to ``I``."""
        for v in vertices:
            if not self.blocked[int(v)]:
                self.add(int(v))

    # ------------------------------------------------------------------ #
    def unblocked(self) -> np.ndarray:
        """Vertices not yet in ``N⁺(I)``."""
        return np.flatnonzero(~self.blocked)

    def residual_degree(self, vertex: int) -> int:
        """``d_I(vertex)``."""
        return int(self.degrees[int(vertex)])

    def heavy_vertices(self, threshold: float) -> np.ndarray:
        """Vertices with ``d_I(v) ≥ threshold``."""
        return np.flatnonzero(self.degrees >= threshold)

    def alive_edge_count(self) -> int:
        """Number of edges with both endpoints unblocked."""
        g = self.graph
        mask = ~self.blocked[g.edge_u] & ~self.blocked[g.edge_v]
        return int(mask.sum())

    def alive_neighbours(self, vertex: int) -> np.ndarray:
        """The unblocked neighbours of ``vertex``."""
        neigh = self.graph.neighbors(int(vertex))
        if neigh.size == 0:
            return neigh
        return neigh[~self.blocked[neigh]]

    def independent_set(self) -> list[int]:
        """The current independent set as a sorted vertex list."""
        return [int(v) for v in np.flatnonzero(self.in_set)]
