"""Appendix B — hungry-greedy maximal clique.

A maximal clique in ``G`` is a maximal independent set in the complement
graph, but the complement cannot be materialised in the MapReduce model
(``Ω(n²)`` space).  The paper's fix is a *relabelling scheme*: the central
machine keeps the set of still-active vertices relabelled to ``[k]``, so any
vertex can compute its complement neighbourhood among the active vertices as
``[k] \\ N`` from its (sparse) adjacency list — only ``O(n^{1+µ})`` words of
the complement are ever needed per round.

This module implements the resulting algorithm directly on the primal graph:
it maintains the clique ``C`` and the candidate set
``P = {v ∉ C : v adjacent to every vertex of C}``; the *complement residual
degree* of ``v ∈ P`` is ``|P| − 1 − |N_G(v) ∩ P|``, the number of candidates
that adding ``v`` would disqualify.  The hungry-greedy phases then mirror
Algorithm 2: sample groups of candidates with large complement degree and
add one per group, shrinking ``P`` geometrically; finish greedily once ``P``
is small (Corollary B.1: ``O(1/µ)`` rounds).
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ..results import CliqueResult, IterationStats

__all__ = ["hungry_greedy_maximal_clique", "sequential_greedy_maximal_clique"]


class _CliqueState:
    """Maintains the clique, the candidate set and per-vertex counts incrementally."""

    def __init__(self, graph: Graph):
        self.graph = graph
        n = graph.num_vertices
        self.in_clique = np.zeros(n, dtype=bool)
        self.candidate = np.ones(n, dtype=bool)
        # deg_in_p[v] = |N_G(v) ∩ P| for candidates (unused for non-candidates).
        self.deg_in_p = graph.degrees().astype(np.int64).copy()
        self.num_candidates = n

    def complement_degrees(self) -> np.ndarray:
        """``|P| − 1 − |N_G(v) ∩ P|`` for candidates, −1 for non-candidates."""
        out = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        cand = np.flatnonzero(self.candidate)
        if cand.size:
            out[cand] = self.num_candidates - 1 - self.deg_in_p[cand]
        return out

    def add(self, vertex: int) -> None:
        """Add ``vertex`` to the clique and restrict ``P`` to its neighbours."""
        v = int(vertex)
        if not self.candidate[v]:
            raise ValueError(f"vertex {v} is not a valid clique candidate")
        self.in_clique[v] = True
        self.candidate[v] = False
        self.num_candidates -= 1
        neighbours = set(int(x) for x in self.graph.neighbors(v))
        removed = [
            int(u)
            for u in np.flatnonzero(self.candidate)
            if int(u) not in neighbours
        ]
        for u in removed:
            self.candidate[u] = False
        self.num_candidates -= len(removed)
        # Candidates adjacent to a removed vertex lose one candidate-neighbour.
        for u in removed + [v]:
            for x in self.graph.neighbors(u):
                x = int(x)
                if self.candidate[x]:
                    self.deg_in_p[x] -= 1

    def candidates(self) -> np.ndarray:
        return np.flatnonzero(self.candidate)

    def clique(self) -> list[int]:
        return [int(v) for v in np.flatnonzero(self.in_clique)]


def sequential_greedy_maximal_clique(
    graph: Graph, order: np.ndarray | None = None
) -> list[int]:
    """Sequential greedy maximal clique: scan vertices, add whenever still adjacent to all chosen."""
    n = graph.num_vertices
    order = np.arange(n) if order is None else np.asarray(order, dtype=np.int64)
    clique: list[int] = []
    clique_set: set[int] = set()
    for v in order:
        v = int(v)
        neighbours = set(int(x) for x in graph.neighbors(v))
        if clique_set <= neighbours:
            clique.append(v)
            clique_set.add(v)
    return clique


def hungry_greedy_maximal_clique(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    alpha: float | None = None,
) -> CliqueResult:
    """Run the hungry-greedy maximal clique algorithm with space parameter ``µ``.

    Parameters
    ----------
    graph:
        The input graph.
    mu:
        Space exponent; groups have ``n^{µ/2}`` vertices and the candidate
        set is finished on one machine once it is small.
    rng:
        Randomness source.
    alpha:
        Phase step (defaults to ``µ/2``).

    Returns
    -------
    CliqueResult
        A maximal clique of ``graph`` and the per-sweep trace (``alive`` is
        the number of *heavy* candidates — those whose insertion would
        disqualify many other candidates).
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    n = graph.num_vertices
    if n == 0:
        return CliqueResult([], algorithm="hungry-greedy-maximal-clique")
    alpha = (mu / 2.0) if alpha is None else float(alpha)
    alpha = min(max(alpha, 1e-9), 1.0)
    num_phases = max(1, int(np.ceil(max(0.0, 1.0 - mu) / alpha)))
    group_size = max(1, int(round(n ** (mu / 2.0))))

    state = _CliqueState(graph)
    iterations: list[IterationStats] = []
    sweep = 0

    for phase in range(1, num_phases + 1):
        heavy_threshold = max(1.0, n ** (1.0 - phase * alpha))
        heavy_stop = max(1.0, n ** (phase * alpha))
        while True:
            comp_deg = state.complement_degrees()
            heavy = np.flatnonzero(comp_deg >= heavy_threshold)
            if heavy.size < heavy_stop:
                break
            sweep += 1
            num_groups = max(1, int(round(n ** (phase * alpha))))
            selected = 0
            sampled_total = 0
            sample_words = 0
            for _ in range(num_groups):
                comp_deg = state.complement_degrees()
                heavy_now = np.flatnonzero(comp_deg >= heavy_threshold)
                if heavy_now.size == 0:
                    break
                group = rng.choice(heavy_now, size=min(group_size, heavy_now.size), replace=False)
                sampled_total += int(group.size)
                # Shipped to the central machine: each sampled vertex's
                # complement neighbourhood among the active vertices, encoded
                # via the relabelling scheme (whichever of N∩P or its
                # complement is smaller — the vertex knows both thanks to σ
                # and k).
                per_vertex = np.minimum(state.deg_in_p[group], comp_deg[group])
                sample_words += int(per_vertex.sum()) + int(group.size)
                eligible = group[comp_deg[group] >= heavy_threshold]
                # Re-check after possible earlier insertions in this sweep.
                eligible = eligible[state.candidate[eligible]]
                if eligible.size:
                    state.add(int(eligible[0]))
                    selected += 1
            iterations.append(
                IterationStats(
                    iteration=sweep,
                    alive=int(heavy.size),
                    sampled=sampled_total,
                    sample_words=sample_words,
                    selected=selected,
                    phase=f"phase-{phase}",
                )
            )

    # Finish on one machine: greedily extend the clique with the remaining
    # candidates (every candidate is adjacent to all of C by construction).
    remaining = state.candidates()
    if remaining.size:
        sweep += 1
        final_comp = state.complement_degrees()
        words = int(
            np.minimum(state.deg_in_p[remaining], final_comp[remaining]).sum()
        ) + int(remaining.size)
        added = 0
        while True:
            cand = state.candidates()
            if cand.size == 0:
                break
            state.add(int(cand[0]))
            added += 1
        iterations.append(
            IterationStats(
                iteration=sweep,
                alive=int(remaining.size),
                sampled=int(remaining.size),
                sample_words=words,
                selected=added,
                phase="final",
            )
        )

    return CliqueResult(
        vertices=state.clique(),
        iterations=iterations,
        algorithm="hungry-greedy-maximal-clique",
    )
