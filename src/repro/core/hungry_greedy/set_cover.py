"""Algorithm 3 — hungry-greedy ``(1 + ε)·H_∆`` approximation for weighted set cover.

Section 4 of the paper.  The algorithm implements the *ε-greedy* rule — add
any set whose cost-effectiveness ``|S_ℓ \\ C| / w_ℓ`` is within a ``(1+ε)``
factor of the current best — using the bucketing technique of the PRAM set
cover literature: the threshold ``L`` starts at ``max_ℓ |S_ℓ|/w_ℓ`` and is
divided by ``(1+ε)`` each time the bucket of almost-optimal sets is
exhausted.

To exhaust a bucket quickly, sets in the bucket are partitioned into
``1/α`` cardinality classes (``α = µ/8``); from class ``i`` the algorithm
samples ``2·m^{(i+1)α}`` groups of about ``m^{µ/2}`` sets and adds one
still-useful set per group (Lines 10–22).  Lemma 4.3 shows the potential
``Φ_k = Σ_{almost-optimal ℓ} |S_ℓ \\ C_k|`` shrinks by ``m^{µ/8}`` per
iteration, giving the round bound of Theorem 4.6.

The residual counts ``|S_ℓ \\ C|`` are maintained incrementally by
:class:`~repro.kernels.coverage.CoverageCounter` (one CSR gather plus a
``bincount`` per insertion) instead of rescanning every set per bucket
refresh; the counts are integers, so results are byte-identical to the
rescanning implementation.

The result is a ``(1 + ε)·H_∆``-approximate minimum weight set cover, where
``∆`` is the largest set size and ``H_∆ ≈ ln ∆``.
"""

from __future__ import annotations

import numpy as np

from ...kernels import CoverageCounter
from ...mapreduce.exceptions import AlgorithmFailureError
from ...setcover.instance import SetCoverInstance
from ..results import IterationStats, SetCoverResult

__all__ = ["hungry_greedy_set_cover", "preprocess_weights"]


def preprocess_weights(
    instance: SetCoverInstance, epsilon: float
) -> tuple[np.ndarray, list[int], np.ndarray]:
    """Remark 4.7 preprocessing bounding ``w_max / w_min`` by ``mn/ε``.

    Let ``γ = max_j min_{S ∋ j} w(S)`` (a lower bound on OPT).  Sets with
    weight at most ``γ·ε/n`` are added to the cover outright (they cost at
    most ``ε·OPT`` in total); sets with weight above ``m·γ`` can never be in
    an optimal solution and are discarded.

    Returns ``(usable_mask, forced_sets, gamma)`` where ``forced_sets`` are
    the cheap sets added up-front.
    """
    n, m = instance.num_sets, instance.num_elements
    if m == 0 or n == 0:
        return np.ones(n, dtype=bool), [], np.float64(0.0)
    weights = instance.weights
    indptr, indices = instance.element_incidence()
    frequencies = np.diff(indptr)
    nonempty_starts = indptr[:-1][frequencies > 0]
    if nonempty_starts.size:
        # Per-element cheapest owner, one reduceat over the dual index
        # (empty segments have zero width, so nonempty starts tile the flat
        # array exactly).
        gamma = float(np.minimum.reduceat(weights[indices], nonempty_starts).max())
    else:
        gamma = 0.0
    forced = [int(i) for i in np.flatnonzero(weights <= gamma * epsilon / max(1, n))]
    usable = weights <= m * gamma + 1e-12
    if forced:
        usable[np.asarray(forced, dtype=np.int64)] = True
    return usable, forced, np.float64(gamma)


def hungry_greedy_set_cover(
    instance: SetCoverInstance,
    mu: float,
    rng: np.random.Generator,
    *,
    epsilon: float = 0.2,
    alpha: float | None = None,
    preprocess: bool = False,
    max_iterations: int | None = None,
) -> SetCoverResult:
    """Run Algorithm 3 on ``instance`` with space parameter ``µ``.

    Parameters
    ----------
    instance:
        The weighted set cover instance (this algorithm targets the
        ``m ≪ n`` regime but works for any instance).
    mu:
        Space exponent: machines hold ``O(m^{1+µ} log n)`` words; controls
        the group size ``m^{µ/2}`` and the class step ``α = µ/8``.
    rng:
        Randomness source.
    epsilon:
        The ε of the ε-greedy rule; the approximation guarantee is
        ``(1 + ε)·H_∆``.
    alpha:
        Override for the class step ``α``.
    preprocess:
        Apply the weight preprocessing of Remark 4.7 before the main loop.
    max_iterations:
        Safety cap on inner-loop iterations.

    Returns
    -------
    SetCoverResult
        The chosen sets and a per-inner-iteration trace (``alive`` is the
        potential ``Φ_k``, ``phase`` records the current threshold ``L``).
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    n, m = instance.num_sets, instance.num_elements
    if m == 0:
        return SetCoverResult([], 0.0, algorithm="hungry-greedy-set-cover")
    alpha = (mu / 8.0) if alpha is None else float(alpha)
    alpha = min(max(alpha, 1e-9), 1.0)
    num_classes = max(1, int(np.ceil(1.0 / alpha)))
    group_size = max(1, int(round(m ** (mu / 2.0))))
    if max_iterations is None:
        max_iterations = 200 + 40 * int(np.ceil(np.log2(m + 2))) * int(
            np.ceil(np.log2(n + 2))
        )

    weights = instance.weights
    counter = CoverageCounter(instance)
    chosen: list[int] = []
    chosen_mask = np.zeros(n, dtype=bool)
    iterations: list[IterationStats] = []
    usable = np.ones(n, dtype=bool)

    def add_set(set_id: int) -> None:
        chosen_mask[set_id] = True
        chosen.append(set_id)
        counter.add_set(set_id)

    if preprocess:
        usable, forced, _ = preprocess_weights(instance, epsilon)
        for set_id in forced:
            if not chosen_mask[set_id]:
                add_set(set_id)

    # Initial threshold L = max_ℓ |S_ℓ| / w_ℓ.
    ratios = instance.set_sizes / weights
    ratios = np.where(usable, ratios, 0.0)
    L = float(ratios.max()) if n else 0.0
    min_useful_ratio = None
    total_iterations = 0

    while not counter.all_covered():
        if L <= 0:
            raise AlgorithmFailureError("threshold L reached zero with uncovered elements left")
        # Inner while loop: exhaust the bucket of sets with ratio ≥ L/(1+ε).
        while True:
            residual = np.where(usable & ~chosen_mask, counter.residual_counts, 0)
            current_ratio = residual / weights
            bucket = np.flatnonzero(current_ratio >= L / (1.0 + epsilon) - 1e-15)
            if bucket.size == 0:
                break
            total_iterations += 1
            if total_iterations > max_iterations:
                raise AlgorithmFailureError(
                    f"Algorithm 3 did not converge within {max_iterations} iterations"
                )
            potential = int(residual[bucket].sum())
            selected = 0
            sampled_total = 0
            sample_words = 0
            for i in range(1, num_classes + 1):
                lower = m ** (1.0 - i * alpha)
                upper = m ** (1.0 - (i - 1) * alpha)
                if i == 1:
                    upper = float(m) + 1.0  # top class is open-ended
                members = bucket[(residual[bucket] >= lower) & (residual[bucket] < upper)]
                if members.size == 0:
                    continue
                selection_threshold = m ** (1.0 - (i + 1) * alpha) / 2.0
                num_groups = max(1, int(round(2 * m ** ((i + 1) * alpha))))
                p = min(1.0, group_size / members.size)
                for _ in range(num_groups):
                    mask = rng.random(members.size) < p
                    group = members[mask]
                    if group.size == 0:
                        continue
                    if group.size > 4 * group_size:
                        # Failure event of Line 15; skip this iteration's
                        # remaining groups (Claim 4.1 makes this negligible).
                        break
                    sampled_total += int(group.size)
                    sample_words += int(instance.set_sizes[group].sum())
                    for candidate in group:
                        candidate = int(candidate)
                        if chosen_mask[candidate]:
                            continue
                        live = counter.uncovered_count(candidate)
                        if (
                            live >= selection_threshold
                            and live / weights[candidate] >= L / (1.0 + epsilon) - 1e-15
                        ):
                            add_set(candidate)
                            selected += 1
                            break
            iterations.append(
                IterationStats(
                    iteration=total_iterations,
                    alive=potential,
                    sampled=sampled_total,
                    sample_words=sample_words,
                    selected=selected,
                    phase=f"L={L:.4g}",
                )
            )
            if selected == 0:
                # Guarantee progress even when every group missed (relevant
                # only at the small sizes used in tests): take the best set in
                # the bucket directly.  This is still an ε-greedy step.
                live_counts = counter.residual_counts[bucket]
                ratios_now = live_counts / weights[bucket]
                best = int(bucket[int(np.argmax(ratios_now))])
                if ratios_now.max() >= L / (1.0 + epsilon) - 1e-15 and not chosen_mask[best]:
                    add_set(best)
                else:
                    break
        if counter.all_covered():
            break
        L /= 1.0 + epsilon
        # Terminate surely: once L drops below the smallest useful ratio the
        # remaining uncovered elements are covered by the cheapest containing
        # set (this can only happen due to floating point rounding).
        if min_useful_ratio is None:
            positive = ratios[ratios > 0]
            min_useful_ratio = float(positive.min()) if positive.size else 0.0
        if L < min_useful_ratio / (4.0 * (1.0 + epsilon)):
            for j in np.flatnonzero(~counter.covered):
                owners = instance.sets_containing(int(j))
                owners = owners[usable[owners]] if owners.size else owners
                if owners.size == 0:
                    owners = instance.sets_containing(int(j))
                best = int(owners[int(np.argmin(weights[owners]))])
                if not chosen_mask[best]:
                    add_set(best)
            break

    weight = instance.cover_weight(chosen)
    return SetCoverResult(
        chosen_sets=chosen,
        weight=weight,
        iterations=iterations,
        algorithm="hungry-greedy-set-cover",
    )
