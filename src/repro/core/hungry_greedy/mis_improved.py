"""Algorithm 6 — improved hungry-greedy maximal independent set (``O(c/µ)`` rounds).

Appendix A of the paper.  Instead of handling one degree class at a time
(Algorithm 2), every iteration buckets the still-active vertices into
``1/α`` degree classes ``V_{k,i}`` (``α = µ/8``), samples ``n^{(i+1)α}``
groups of ``n^{µ/2}`` vertices from each class, and adds one
still-heavy-enough vertex per group.  Lemma A.2 shows each iteration shrinks
the number of alive edges by a factor ``n^{µ/8}/2``, so after ``O(c/µ)``
iterations fewer than ``n^{1+µ}`` edges remain and the algorithm finishes on
a single machine (Theorem A.3).
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ..results import IndependentSetResult, IterationStats
from ...mapreduce.exceptions import AlgorithmFailureError
from .mis import sequential_greedy_mis
from .state import MISState

__all__ = ["hungry_greedy_mis_improved"]


def hungry_greedy_mis_improved(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    alpha: float | None = None,
    max_iterations: int | None = None,
) -> IndependentSetResult:
    """Run Algorithm 6 on ``graph`` with space parameter ``µ``.

    Parameters
    ----------
    graph:
        The input graph.
    mu:
        Space exponent: machines (and therefore the final single-machine
        step) hold ``O(n^{1+µ})`` words.
    rng:
        Randomness source.
    alpha:
        Degree-class step (defaults to ``µ/8`` as in the paper's analysis).
    max_iterations:
        Safety cap on the number of outer iterations (defaults to
        ``10 + 20·⌈log2(m+2)⌉``).

    Returns
    -------
    IndependentSetResult
        The maximal independent set and a per-iteration trace whose
        ``alive`` field is the number of alive edges ``|E_k|`` (the quantity
        Lemma A.2 shows decays geometrically).
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    n = graph.num_vertices
    if n == 0:
        return IndependentSetResult([], algorithm="hungry-greedy-mis-improved")
    m = graph.num_edges
    alpha = (mu / 8.0) if alpha is None else float(alpha)
    alpha = min(max(alpha, 1e-9), 1.0)
    num_classes = max(1, int(np.ceil(1.0 / alpha)))
    group_size = max(1, int(round(n ** (mu / 2.0))))
    edge_budget = max(1.0, float(n) ** (1.0 + mu))
    if max_iterations is None:
        max_iterations = 10 + 20 * int(np.ceil(np.log2(m + 2)))

    state = MISState(graph)
    # Line 2: isolated vertices join I immediately.
    for v in np.flatnonzero(graph.degrees() == 0):
        state.add(int(v))

    iterations: list[IterationStats] = []
    k = 0
    while state.alive_edge_count() >= edge_budget:
        k += 1
        if k > max_iterations:
            raise AlgorithmFailureError(
                f"Algorithm 6 did not converge within {max_iterations} iterations"
            )
        alive_edges = state.alive_edge_count()
        selected = 0
        sampled_total = 0
        sample_words = 0
        # Degree classes V_{k,i} = {v : n^{1-iα} ≤ d_I(v) < n^{1-(i-1)α}}.
        for i in range(1, num_classes + 1):
            lower = n ** (1.0 - i * alpha)
            upper = n ** (1.0 - (i - 1) * alpha)
            selection_threshold = n ** (1.0 - (i + 1) * alpha)
            members = np.flatnonzero((state.degrees >= lower) & (state.degrees < upper))
            if members.size == 0:
                continue
            num_groups = max(1, int(round(n ** ((i + 1) * alpha))))
            for _ in range(num_groups):
                candidates = members[~state.blocked[members]]
                if candidates.size == 0:
                    break
                group = rng.choice(candidates, size=min(group_size, candidates.size), replace=False)
                sampled_total += int(group.size)
                sample_words += int(state.degrees[group].sum()) + int(group.size)
                eligible = group[state.degrees[group] >= selection_threshold]
                if eligible.size:
                    state.add(int(eligible[0]))
                    selected += 1
        iterations.append(
            IterationStats(
                iteration=k,
                alive=int(alive_edges),
                sampled=sampled_total,
                sample_words=sample_words,
                selected=selected,
                phase=f"iteration-{k}",
            )
        )
        if selected == 0 and state.alive_edge_count() >= alive_edges:
            # Extremely unlikely (all groups missed); force progress by adding
            # the highest-residual-degree vertex so the loop cannot stall.
            candidates = state.unblocked()
            if candidates.size == 0:
                break
            best = candidates[int(np.argmax(state.degrees[candidates]))]
            state.add(int(best))

    # Fewer than n^{1+µ} alive edges remain: ship the residual graph to a
    # single machine and finish the MIS there (Line 14).
    remaining = state.unblocked()
    if remaining.size:
        words = int(state.degrees[remaining].sum()) + int(remaining.size)
        added = sequential_greedy_mis(graph, candidates=remaining, blocked=state.blocked)
        state.add_all(added)
        iterations.append(
            IterationStats(
                iteration=k + 1,
                alive=int(state.alive_edge_count()),
                sampled=int(remaining.size),
                sample_words=words,
                selected=len(added),
                phase="final",
            )
        )

    return IndependentSetResult(
        vertices=state.independent_set(),
        iterations=iterations,
        algorithm="hungry-greedy-mis-improved",
    )
