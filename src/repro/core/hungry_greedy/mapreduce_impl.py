"""MapReduce (MPC) drivers for the hungry-greedy algorithms.

The communication pattern shared by Algorithms 2, 6 and the maximal clique
algorithm (Theorems 3.3, A.3, Corollary B.1) is, per iteration:

1. a parallel round in which vertices determine their residual degree and the
   sampled groups are drawn;
2. a gather round shipping the sampled vertices *and their alive adjacency
   lists* to the central machine, which performs the greedy insertions;
3. a parallel round in which the central machine notifies each vertex whether
   it is now in ``N⁺(I)``;
4. a parallel round in which vertices query their neighbours to recompute
   residual degrees.

Algorithm 3 (greedy set cover, Theorem 4.6) additionally pays a broadcast
tree of fan-out ``m^µ`` to propagate the covered-element set ``C`` and an
aggregation tree to compute the class sizes ``|S_{k,i}|``, which is where
its extra ``log(n)/(µ log m)`` factor comes from.
"""

from __future__ import annotations

import numpy as np

from ...graphs.distributed import DistributedGraph
from ...graphs.graph import Graph
from ...mapreduce.cluster import Cluster
from ...mapreduce.engine import MPCContext
from ...mapreduce.metrics import RunMetrics
from ...setcover.instance import SetCoverInstance
from ..local_ratio.mapreduce_impl import (
    MPCParameters,
    mpc_parameters_for_graph,
)
from ..results import CliqueResult, IndependentSetResult, SetCoverResult
from .maximal_clique import hungry_greedy_maximal_clique
from .mis import hungry_greedy_mis
from .mis_improved import hungry_greedy_mis_improved
from .set_cover import hungry_greedy_set_cover

__all__ = [
    "mpc_maximal_independent_set",
    "mpc_maximal_independent_set_simple",
    "mpc_maximal_clique",
    "mpc_greedy_set_cover",
    "mpc_parameters_for_greedy_set_cover",
]


def _replay_hungry_greedy_rounds(
    ctx: MPCContext,
    cluster: Cluster,
    worker_loads: np.ndarray,
    iterations,
    num_vertices: int,
    num_edges: int,
    num_machines: int,
) -> None:
    """Replay the four-round-per-iteration pattern described in the module docstring."""
    max_worker = int(worker_loads.max()) if worker_loads.size else 0
    for stats in iterations:
        phase = stats.phase or f"iteration-{stats.iteration}"
        ctx.parallel_round(
            f"sweep {stats.iteration}: sample groups ({stats.sampled} vertices, "
            f"{stats.alive} heavy)",
            phase=phase,
            machine_loads=worker_loads,
        )
        ctx.gather_to_central(
            stats.sample_words,
            f"sweep {stats.iteration}: central greedy insertions ({stats.selected} added)",
            phase=phase,
            max_worker_send=max_worker,
        )
        cluster.central.clear()
        ctx.parallel_round(
            f"sweep {stats.iteration}: notify vertices of N+(I)",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=num_vertices,
            messages=num_vertices,
        )
        ctx.parallel_round(
            f"sweep {stats.iteration}: neighbours exchange alive bits (update d_I)",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=2 * num_edges + num_machines,
            messages=2 * num_edges + num_machines,
        )


def mpc_maximal_independent_set(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    strict: bool = True,
) -> tuple[IndependentSetResult, RunMetrics]:
    """Theorem A.3: maximal independent set in ``O(c/µ)`` rounds, ``O(n^{1+µ})`` space."""
    params = mpc_parameters_for_graph(graph, mu)
    result = hungry_greedy_mis_improved(graph, mu, rng)
    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster, algorithm="mpc-mis-improved", default_fanout=params.fanout, strict=strict
    )
    dist = DistributedGraph(graph, cluster, rng)
    _replay_hungry_greedy_rounds(
        ctx,
        cluster,
        dist.total_loads(),
        result.iterations,
        graph.num_vertices,
        graph.num_edges,
        params.num_machines,
    )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        c=params.c,
        eta=params.eta,
        num_machines=params.num_machines,
        sweeps=len(result.iterations),
    )
    return result, metrics


def mpc_maximal_independent_set_simple(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    strict: bool = True,
) -> tuple[IndependentSetResult, RunMetrics]:
    """Theorem 3.3: the simpler phase-by-phase MIS in ``O(1/µ²)`` rounds."""
    params = mpc_parameters_for_graph(graph, mu)
    result = hungry_greedy_mis(graph, mu, rng)
    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster, algorithm="mpc-mis-simple", default_fanout=params.fanout, strict=strict
    )
    dist = DistributedGraph(graph, cluster, rng)
    _replay_hungry_greedy_rounds(
        ctx,
        cluster,
        dist.total_loads(),
        result.iterations,
        graph.num_vertices,
        graph.num_edges,
        params.num_machines,
    )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        c=params.c,
        eta=params.eta,
        num_machines=params.num_machines,
        sweeps=len(result.iterations),
    )
    return result, metrics


def mpc_maximal_clique(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    strict: bool = True,
) -> tuple[CliqueResult, RunMetrics]:
    """Corollary B.1: maximal clique in ``O(1/µ)`` rounds via the relabelling scheme.

    One extra parallel round per sweep accounts for the relabelling step
    (the central machine distributes the permutation ``σ`` and the active
    count ``k``).
    """
    params = mpc_parameters_for_graph(graph, mu)
    result = hungry_greedy_maximal_clique(graph, mu, rng)
    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster, algorithm="mpc-maximal-clique", default_fanout=params.fanout, strict=strict
    )
    dist = DistributedGraph(graph, cluster, rng)
    worker_loads = dist.total_loads()
    max_worker = int(worker_loads.max()) if worker_loads.size else 0
    for stats in result.iterations:
        phase = stats.phase or f"sweep-{stats.iteration}"
        ctx.parallel_round(
            f"sweep {stats.iteration}: relabel active vertices (σ, k)",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=graph.num_vertices + 1,
            messages=graph.num_vertices,
        )
        ctx.parallel_round(
            f"sweep {stats.iteration}: sample heavy candidates ({stats.sampled})",
            phase=phase,
            machine_loads=worker_loads,
        )
        ctx.gather_to_central(
            stats.sample_words,
            f"sweep {stats.iteration}: central clique extension ({stats.selected} added)",
            phase=phase,
            max_worker_send=max_worker,
        )
        cluster.central.clear()
        ctx.parallel_round(
            f"sweep {stats.iteration}: neighbours exchange candidate bits",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=2 * graph.num_edges + params.num_machines,
            messages=2 * graph.num_edges + params.num_machines,
        )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        c=params.c,
        eta=params.eta,
        num_machines=params.num_machines,
        sweeps=len(result.iterations),
    )
    return result, metrics


# --------------------------------------------------------------------------- #
# Greedy set cover (Theorem 4.6)
# --------------------------------------------------------------------------- #
def mpc_parameters_for_greedy_set_cover(
    instance: SetCoverInstance, mu: float, *, space_factor: float = 16.0
) -> MPCParameters:
    """MPC parameters for Algorithm 3: space ``O(m^{1+µ} log n)`` per machine."""
    m = max(2, instance.num_elements)
    n = max(2, instance.num_sets)
    total = max(1, instance.total_size)
    c = max(mu, np.log(total) / np.log(m) - 1.0)
    eta = max(1, int(round(m ** (1.0 + mu))))
    num_machines = max(1, int(np.ceil(total / eta)))
    memory = int(np.ceil(space_factor * eta * max(1.0, np.log(n + 1))))
    fanout = max(2, int(round(m**mu)))
    return MPCParameters(m, mu, float(c), eta, num_machines, memory, fanout)


def mpc_greedy_set_cover(
    instance: SetCoverInstance,
    mu: float,
    rng: np.random.Generator,
    *,
    epsilon: float = 0.2,
    strict: bool = True,
) -> tuple[SetCoverResult, RunMetrics]:
    """Theorem 4.6: ``(1 + ε)·H_∆``-approximate set cover.

    Every inner iteration pays one sample/gather round, a broadcast tree to
    distribute the newly covered elements and an aggregation tree to compute
    the class sizes, each of depth ``O(log n / (µ log m))``.
    """
    params = mpc_parameters_for_greedy_set_cover(instance, mu)
    result = hungry_greedy_set_cover(instance, mu, rng, epsilon=epsilon)
    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster, algorithm="mpc-greedy-set-cover", default_fanout=params.fanout, strict=strict
    )
    # Sets are distributed with ~η words per machine.
    loads = np.zeros(params.num_machines, dtype=np.int64)
    machine_of = np.arange(instance.num_sets) % params.num_machines
    for set_id in range(instance.num_sets):
        loads[machine_of[set_id]] += int(instance.set_sizes[set_id]) + 1
    covered_total = 0
    for stats in result.iterations:
        phase = stats.phase or f"iteration-{stats.iteration}"
        ctx.parallel_round(
            f"iteration {stats.iteration}: sample groups X_i,j ({stats.sampled} sets)",
            phase=phase,
            machine_loads=loads,
        )
        ctx.gather_to_central(
            stats.sample_words + stats.sampled,
            f"iteration {stats.iteration}: central ε-greedy selections ({stats.selected})",
            phase=phase,
            max_worker_send=int(loads.max()) if loads.size else 0,
        )
        cluster.central.clear()
        covered_total = min(instance.num_elements, covered_total + stats.alive)
        ctx.broadcast(
            max(1, min(instance.num_elements, covered_total)),
            f"iteration {stats.iteration}: broadcast covered elements C",
            phase=phase,
        )
        ctx.aggregate(
            max(1, int(np.ceil(1.0 / max(mu / 8.0, 1e-9)))),
            f"iteration {stats.iteration}: aggregate class sizes |S_k,i|",
            phase=phase,
        )
    metrics = ctx.finish(
        n=instance.num_sets,
        m=instance.num_elements,
        delta=instance.max_set_size,
        mu=mu,
        c=params.c,
        epsilon=epsilon,
        eta=params.eta,
        num_machines=params.num_machines,
        inner_iterations=len(result.iterations),
    )
    return result, metrics
