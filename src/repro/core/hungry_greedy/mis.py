"""Algorithm 2 — the "hungry-greedy" maximal independent set algorithm.

Section 3 of the paper.  The algorithm runs in roughly ``1/α`` *phases*
(``α = µ/2``); phase ``i`` reduces the maximum *residual* degree — the number
of neighbours that are neither in the independent set ``I`` nor adjacent to
it — from ``n^{1−(i−1)α}`` to ``n^{1−iα}``.  Within a phase, while many
*heavy* vertices remain, the algorithm repeatedly draws ``n^{iα}`` groups of
``n^{µ/2}`` uniformly random heavy vertices and adds to ``I`` one vertex per
group that is still heavy when the group is examined (Lemma 3.2 shows each
such sweep shrinks the heavy set by an ``n^{µ/4}`` factor w.h.p.).  Once few
heavy vertices remain, their induced subgraph is finished sequentially on
the central machine, and after the last phase the residual maximum degree is
at most ``n^µ`` so the remaining graph fits on a single machine and is
finished there in one final round.

Total rounds: ``O(1/µ²)`` (Theorem 3.3).  The improved ``O(c/µ)``-round
variant is :mod:`repro.core.hungry_greedy.mis_improved`.
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ...kernels import greedy_mis_pass
from ..results import IndependentSetResult, IterationStats
from .state import MISState

__all__ = ["hungry_greedy_mis", "sequential_greedy_mis"]


def sequential_greedy_mis(
    graph: Graph,
    candidates: np.ndarray | None = None,
    blocked: np.ndarray | None = None,
    order: np.ndarray | None = None,
) -> list[int]:
    """Plain sequential greedy MIS over ``candidates`` respecting ``blocked``.

    Scans the candidates in the given order and adds every vertex that is not
    yet blocked, blocking its neighbours.  Used for the "finish on the
    central machine" steps of Algorithms 2 and 6 and as a standalone
    sequential baseline.  Returns only the newly added vertices.  The scan
    runs through the batched :func:`~repro.kernels.mis.greedy_mis_pass`
    kernel (byte-identical to the per-vertex loop it replaced).
    """
    n = graph.num_vertices
    blocked = np.zeros(n, dtype=bool) if blocked is None else blocked.copy()
    if candidates is None:
        candidates = np.arange(n)
    if order is not None:
        candidates = np.asarray(order, dtype=np.int64)
    adj_indptr, adj_indices = graph.adjacency()
    added: list[int] = []
    greedy_mis_pass(adj_indptr, adj_indices, candidates, blocked, added)
    return added


def hungry_greedy_mis(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    alpha: float | None = None,
) -> IndependentSetResult:
    """Run Algorithm 2 on ``graph`` with space parameter ``µ``.

    Parameters
    ----------
    graph:
        The input graph.
    mu:
        Space exponent: machines have ``O(n^{1+µ})`` memory.  Controls the
        group size ``n^{µ/2}`` and (through ``α = µ/2``) the number of phases.
    rng:
        Randomness source.
    alpha:
        Override for the phase step ``α`` (defaults to ``µ/2`` as in the
        paper).

    Returns
    -------
    IndependentSetResult
        The maximal independent set and a per-sweep trace: ``alive`` is the
        number of heavy vertices at the start of the sweep, ``sampled`` the
        total sampled vertices, ``sample_words`` the neighbourhood words
        shipped to the central machine, ``selected`` how many vertices
        joined ``I``.
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    n = graph.num_vertices
    if n == 0:
        return IndependentSetResult([], algorithm="hungry-greedy-mis")
    alpha = (mu / 2.0) if alpha is None else float(alpha)
    alpha = min(max(alpha, 1e-9), 1.0)
    # Phases stop once the degree threshold reaches n^µ; the rest of the
    # graph is finished on a single machine (it has ≤ n^{1+µ} edges).
    num_phases = max(1, int(np.ceil(max(0.0, 1.0 - mu) / alpha)))
    group_size = max(1, int(round(n ** (mu / 2.0))))

    state = MISState(graph)
    iterations: list[IterationStats] = []
    sweep = 0

    for phase in range(1, num_phases + 1):
        heavy_threshold = max(1.0, n ** (1.0 - phase * alpha))
        heavy_stop = max(1.0, n ** (phase * alpha))
        while True:
            heavy = state.heavy_vertices(heavy_threshold)
            if heavy.size < heavy_stop:
                break
            sweep += 1
            num_groups = max(1, int(round(n ** (phase * alpha))))
            selected = 0
            sampled_total = 0
            sample_words = 0
            for _ in range(num_groups):
                heavy_now = state.heavy_vertices(heavy_threshold)
                if heavy_now.size == 0:
                    break
                group = rng.choice(heavy_now, size=min(group_size, heavy_now.size), replace=False)
                sampled_total += int(group.size)
                # The central machine receives each sampled vertex with its
                # list of alive neighbours (Remark 3.1).
                sample_words += int(state.degrees[group].sum()) + int(group.size)
                eligible = group[state.degrees[group] >= heavy_threshold]
                if eligible.size:
                    state.add(int(eligible[0]))
                    selected += 1
            iterations.append(
                IterationStats(
                    iteration=sweep,
                    alive=int(heavy.size),
                    sampled=sampled_total,
                    sample_words=sample_words,
                    selected=selected,
                    phase=f"phase-{phase}",
                )
            )
        # Few heavy vertices remain (|V_H| < n^{iα}): finish them sequentially
        # on the central machine (Line 12 of Algorithm 2).
        heavy = state.heavy_vertices(heavy_threshold)
        if heavy.size:
            sweep += 1
            words = int(state.degrees[heavy].sum()) + int(heavy.size)
            added = sequential_greedy_mis(graph, candidates=heavy, blocked=state.blocked)
            state.add_all(added)
            iterations.append(
                IterationStats(
                    iteration=sweep,
                    alive=int(heavy.size),
                    sampled=int(heavy.size),
                    sample_words=words,
                    selected=len(added),
                    phase=f"phase-{phase}-cleanup",
                )
            )

    # Final round: the residual maximum degree is below n^µ, so the remaining
    # graph fits on one machine; finish the MIS there.
    remaining = state.unblocked()
    if remaining.size:
        sweep += 1
        words = int(state.degrees[remaining].sum()) + int(remaining.size)
        added = sequential_greedy_mis(graph, candidates=remaining, blocked=state.blocked)
        state.add_all(added)
        iterations.append(
            IterationStats(
                iteration=sweep,
                alive=int(remaining.size),
                sampled=int(remaining.size),
                sample_words=words,
                selected=len(added),
                phase="final",
            )
        )

    return IndependentSetResult(
        vertices=state.independent_set(),
        iterations=iterations,
        algorithm="hungry-greedy-mis",
    )
