"""Sequential local ratio algorithms (the paper's building blocks).

These are the classical algorithms the randomized MapReduce variants
instantiate:

* **Weighted set cover** — Bar-Yehuda & Even's local ratio method
  (Theorem 2.1): repeatedly pick an element whose containing sets all have
  positive residual weight, subtract the minimum residual weight of those
  sets from each of them, and move every set that reaches zero into the
  cover.  ``f``-approximation, where ``f`` is the maximum element frequency.

* **Weighted vertex cover** — the ``f = 2`` special case, stated directly on
  graphs for convenience.

* **Maximum weight matching** — the Paz–Schwartzman local ratio method
  (Theorem 5.1): pick a positive-weight edge, subtract its weight from
  itself and all incident edges, push it on a stack; at the end unwind the
  stack adding edges greedily.  2-approximation.

* **Maximum weight b-matching** — the ε-adjusted variant of Appendix D:
  the selected edge's weight is subtracted fully from itself and divided by
  the endpoint capacities for incident edges; an edge is discarded once its
  weight drops below ``(1+ε)`` times the accumulated reductions.
  ``(3 − 2/max(2, b) + 2ε)``-approximation.

Each function accepts an explicit processing *order* so the randomized
variants can reuse the identical weight-reduction code with the order
induced by their random samples — this is exactly the property ("elements
can be processed in a fairly arbitrary order") that the paper's randomized
local ratio technique exploits.

The weight-reduction loops themselves live in :mod:`repro.kernels`: the
batched NumPy kernels produce byte-identical results to the pure-Python
loops retained in :mod:`repro.kernels.reference` (golden tests enforce
this), so these functions are thin drivers around instance/graph state.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ...graphs.graph import Graph
from ...kernels import (
    b_matching_reduction,
    capacity_array,
    matching_reduction,
    set_cover_reduction,
    unwind_b_matching,
    unwind_matching,
    vertex_cover_reduction,
)
from ...setcover.instance import SetCoverInstance
from ..results import MatchingResult, SetCoverResult

__all__ = [
    "local_ratio_set_cover",
    "local_ratio_vertex_cover",
    "local_ratio_matching",
    "local_ratio_b_matching",
    "unwind_matching_stack",
    "unwind_b_matching_stack",
]


# --------------------------------------------------------------------------- #
# Weighted set cover (Theorem 2.1)
# --------------------------------------------------------------------------- #
def local_ratio_set_cover(
    instance: SetCoverInstance,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> SetCoverResult:
    """Bar-Yehuda–Even local ratio algorithm for weighted set cover.

    Parameters
    ----------
    instance:
        The weighted set cover instance.
    order:
        Order in which to consider elements.  Defaults to ``0..m-1``; pass a
        permutation to exercise the order-invariance of the guarantee, or a
        subset to run the *partial* algorithm used by the randomized variant
        (elements outside the order are simply never selected).
    rng:
        If given and ``order`` is ``None``, a uniformly random order is used.

    Returns
    -------
    SetCoverResult
        The chosen set ids (all sets whose residual weight reached zero) and
        their total original weight.  When ``order`` covers every element the
        result is a feasible cover and an ``f``-approximation.
    """
    m = instance.num_elements
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    elem_indptr, elem_indices = instance.element_incidence()
    set_indptr, set_indices = instance.set_incidence()
    residual = instance.weights.astype(np.float64).copy()
    chosen: list[int] = []
    in_cover = np.zeros(instance.num_sets, dtype=bool)
    covered = np.zeros(m, dtype=bool)
    set_cover_reduction(
        elem_indptr,
        elem_indices,
        set_indptr,
        set_indices,
        residual,
        covered,
        in_cover,
        np.asarray(order, dtype=np.int64),
        chosen,
    )
    weight = instance.cover_weight(chosen)
    return SetCoverResult(chosen, weight, algorithm="local-ratio-sequential")


# --------------------------------------------------------------------------- #
# Weighted vertex cover (f = 2 special case)
# --------------------------------------------------------------------------- #
def local_ratio_vertex_cover(
    graph: Graph,
    vertex_weights: Sequence[float] | np.ndarray,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> SetCoverResult:
    """Local ratio 2-approximation for weighted vertex cover.

    Elements are edges, sets are vertices.  ``order`` is an edge order.
    """
    weights = np.asarray(vertex_weights, dtype=np.float64)
    if weights.shape != (graph.num_vertices,):
        raise ValueError("need one weight per vertex")
    m = graph.num_edges
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    residual = weights.copy()
    in_cover = np.zeros(graph.num_vertices, dtype=bool)
    chosen: list[int] = []
    vertex_cover_reduction(
        graph.edge_u,
        graph.edge_v,
        residual,
        in_cover,
        np.asarray(order, dtype=np.int64),
        chosen,
    )
    weight = float(weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return SetCoverResult(chosen, weight, algorithm="local-ratio-vertex-cover-sequential")


# --------------------------------------------------------------------------- #
# Maximum weight matching (Theorem 5.1)
# --------------------------------------------------------------------------- #
def unwind_matching_stack(graph: Graph, stack: Sequence[int]) -> list[int]:
    """Unwind a local ratio stack, greedily adding vertex-disjoint edges (LIFO)."""
    return unwind_matching(graph.edge_u, graph.edge_v, graph.num_vertices, stack)


def local_ratio_matching(
    graph: Graph,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    selector: Callable[[np.ndarray], int] | None = None,
) -> MatchingResult:
    """Paz–Schwartzman local ratio 2-approximation for maximum weight matching.

    ``order`` is the order in which edges are *considered*; an edge is
    selected only if its residual weight is still positive when reached.
    ``selector`` is unused here but documents the extension point the
    randomized variant exploits (it selects the heaviest sampled edge per
    vertex instead of following a fixed order).
    """
    m = graph.num_edges
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    # phi[v] = total weight reduction applied to edges incident to v.
    phi = np.zeros(graph.num_vertices, dtype=np.float64)
    stack: list[int] = []
    matching_reduction(
        graph.edge_u,
        graph.edge_v,
        graph.weights,
        phi,
        np.asarray(order, dtype=np.int64),
        stack,
    )
    matching = unwind_matching_stack(graph, stack)
    weight = float(graph.weights[np.asarray(matching, dtype=np.int64)].sum()) if matching else 0.0
    return MatchingResult(
        matching, weight, stack_size=len(stack), algorithm="local-ratio-matching-sequential"
    )


# --------------------------------------------------------------------------- #
# Maximum weight b-matching (Appendix D)
# --------------------------------------------------------------------------- #
def unwind_b_matching_stack(
    graph: Graph, stack: Sequence[int], capacities: np.ndarray
) -> list[int]:
    """Unwind a b-matching stack, adding edges while both endpoints have capacity."""
    return unwind_b_matching(graph.edge_u, graph.edge_v, stack, capacities)


def local_ratio_b_matching(
    graph: Graph,
    b: Mapping[int, int] | Sequence[int] | int,
    *,
    epsilon: float = 0.1,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> MatchingResult:
    """ε-adjusted local ratio algorithm for maximum weight b-matching.

    Follows Appendix D: selecting edge ``e = (u, v)`` of residual weight
    ``w`` reduces incident edges at ``u`` by ``w / b(u)`` and at ``v`` by
    ``w / b(v)``; an edge is treated as dead once its weight is at most
    ``(1 + ε)`` times the accumulated incident reductions.  Unwinding the
    stack greedily yields a ``(3 − 2/max(2, b) + 2ε)``-approximation.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    capacities = capacity_array(graph.num_vertices, b)
    if np.any(capacities < 1):
        raise ValueError("all capacities must be at least 1")
    m = graph.num_edges
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    phi = np.zeros(graph.num_vertices, dtype=np.float64)
    stack: list[int] = []
    b_matching_reduction(
        graph.edge_u,
        graph.edge_v,
        graph.weights,
        capacities,
        float(epsilon),
        phi,
        np.asarray(order, dtype=np.int64),
        stack,
    )
    chosen = unwind_b_matching_stack(graph, stack, capacities)
    weight = float(graph.weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(
        chosen, weight, stack_size=len(stack), algorithm="local-ratio-b-matching-sequential"
    )
