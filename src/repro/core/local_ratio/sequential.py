"""Sequential local ratio algorithms (the paper's building blocks).

These are the classical algorithms the randomized MapReduce variants
instantiate:

* **Weighted set cover** — Bar-Yehuda & Even's local ratio method
  (Theorem 2.1): repeatedly pick an element whose containing sets all have
  positive residual weight, subtract the minimum residual weight of those
  sets from each of them, and move every set that reaches zero into the
  cover.  ``f``-approximation, where ``f`` is the maximum element frequency.

* **Weighted vertex cover** — the ``f = 2`` special case, stated directly on
  graphs for convenience.

* **Maximum weight matching** — the Paz–Schwartzman local ratio method
  (Theorem 5.1): pick a positive-weight edge, subtract its weight from
  itself and all incident edges, push it on a stack; at the end unwind the
  stack adding edges greedily.  2-approximation.

* **Maximum weight b-matching** — the ε-adjusted variant of Appendix D:
  the selected edge's weight is subtracted fully from itself and divided by
  the endpoint capacities for incident edges; an edge is discarded once its
  weight drops below ``(1+ε)`` times the accumulated reductions.
  ``(3 − 2/max(2, b) + 2ε)``-approximation.

Each function accepts an explicit processing *order* so the randomized
variants can reuse the identical weight-reduction code with the order
induced by their random samples — this is exactly the property ("elements
can be processed in a fairly arbitrary order") that the paper's randomized
local ratio technique exploits.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ...graphs.graph import Graph
from ...setcover.instance import SetCoverInstance
from ..results import MatchingResult, SetCoverResult

__all__ = [
    "local_ratio_set_cover",
    "local_ratio_vertex_cover",
    "local_ratio_matching",
    "local_ratio_b_matching",
    "unwind_matching_stack",
    "unwind_b_matching_stack",
]


# --------------------------------------------------------------------------- #
# Weighted set cover (Theorem 2.1)
# --------------------------------------------------------------------------- #
def local_ratio_set_cover(
    instance: SetCoverInstance,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> SetCoverResult:
    """Bar-Yehuda–Even local ratio algorithm for weighted set cover.

    Parameters
    ----------
    instance:
        The weighted set cover instance.
    order:
        Order in which to consider elements.  Defaults to ``0..m-1``; pass a
        permutation to exercise the order-invariance of the guarantee, or a
        subset to run the *partial* algorithm used by the randomized variant
        (elements outside the order are simply never selected).
    rng:
        If given and ``order`` is ``None``, a uniformly random order is used.

    Returns
    -------
    SetCoverResult
        The chosen set ids (all sets whose residual weight reached zero) and
        their total original weight.  When ``order`` covers every element the
        result is a feasible cover and an ``f``-approximation.
    """
    m = instance.num_elements
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    residual = instance.weights.astype(np.float64).copy()
    chosen: list[int] = []
    in_cover = np.zeros(instance.num_sets, dtype=bool)
    covered = np.zeros(m, dtype=bool)
    for element in np.asarray(order, dtype=np.int64):
        if covered[element]:
            continue
        owners = instance.sets_containing(int(element))
        if owners.size == 0:
            continue
        # All owners have positive residual weight here: otherwise some owner
        # would already be in the cover and the element would be covered.
        eps = float(residual[owners].min())
        residual[owners] -= eps
        newly_zero = owners[residual[owners] <= 1e-12]
        for set_id in newly_zero:
            if not in_cover[set_id]:
                in_cover[set_id] = True
                chosen.append(int(set_id))
                elems = instance.set_elements(int(set_id))
                if elems.size:
                    covered[elems] = True
    weight = instance.cover_weight(chosen)
    return SetCoverResult(chosen, weight, algorithm="local-ratio-sequential")


# --------------------------------------------------------------------------- #
# Weighted vertex cover (f = 2 special case)
# --------------------------------------------------------------------------- #
def local_ratio_vertex_cover(
    graph: Graph,
    vertex_weights: Sequence[float] | np.ndarray,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> SetCoverResult:
    """Local ratio 2-approximation for weighted vertex cover.

    Elements are edges, sets are vertices.  ``order`` is an edge order.
    """
    weights = np.asarray(vertex_weights, dtype=np.float64)
    if weights.shape != (graph.num_vertices,):
        raise ValueError("need one weight per vertex")
    m = graph.num_edges
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    residual = weights.copy()
    in_cover = np.zeros(graph.num_vertices, dtype=bool)
    chosen: list[int] = []
    for edge in np.asarray(order, dtype=np.int64):
        u, v = graph.edge_endpoints(int(edge))
        if in_cover[u] or in_cover[v]:
            continue
        eps = float(min(residual[u], residual[v]))
        residual[u] -= eps
        residual[v] -= eps
        for vertex in (u, v):
            if residual[vertex] <= 1e-12 and not in_cover[vertex]:
                in_cover[vertex] = True
                chosen.append(int(vertex))
    weight = float(weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return SetCoverResult(chosen, weight, algorithm="local-ratio-vertex-cover-sequential")


# --------------------------------------------------------------------------- #
# Maximum weight matching (Theorem 5.1)
# --------------------------------------------------------------------------- #
def unwind_matching_stack(graph: Graph, stack: Sequence[int]) -> list[int]:
    """Unwind a local ratio stack, greedily adding vertex-disjoint edges (LIFO)."""
    matched = np.zeros(graph.num_vertices, dtype=bool)
    matching: list[int] = []
    for edge_id in reversed(list(stack)):
        u, v = graph.edge_endpoints(int(edge_id))
        if not matched[u] and not matched[v]:
            matched[u] = True
            matched[v] = True
            matching.append(int(edge_id))
    return matching


def local_ratio_matching(
    graph: Graph,
    *,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    selector: Callable[[np.ndarray], int] | None = None,
) -> MatchingResult:
    """Paz–Schwartzman local ratio 2-approximation for maximum weight matching.

    ``order`` is the order in which edges are *considered*; an edge is
    selected only if its residual weight is still positive when reached.
    ``selector`` is unused here but documents the extension point the
    randomized variant exploits (it selects the heaviest sampled edge per
    vertex instead of following a fixed order).
    """
    m = graph.num_edges
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    # phi[v] = total weight reduction applied to edges incident to v.
    phi = np.zeros(graph.num_vertices, dtype=np.float64)
    stack: list[int] = []
    for edge in np.asarray(order, dtype=np.int64):
        u, v = graph.edge_endpoints(int(edge))
        residual = graph.edge_weight(int(edge)) - phi[u] - phi[v]
        if residual <= 1e-12:
            continue
        phi[u] += residual
        phi[v] += residual
        stack.append(int(edge))
    matching = unwind_matching_stack(graph, stack)
    weight = float(graph.weights[np.asarray(matching, dtype=np.int64)].sum()) if matching else 0.0
    return MatchingResult(
        matching, weight, stack_size=len(stack), algorithm="local-ratio-matching-sequential"
    )


# --------------------------------------------------------------------------- #
# Maximum weight b-matching (Appendix D)
# --------------------------------------------------------------------------- #
def _capacity_array(graph: Graph, b: Mapping[int, int] | Sequence[int] | int) -> np.ndarray:
    if isinstance(b, Mapping):
        return np.array([int(b.get(v, 1)) for v in range(graph.num_vertices)], dtype=np.int64)
    if np.isscalar(b):
        return np.full(graph.num_vertices, int(b), dtype=np.int64)  # type: ignore[arg-type]
    arr = np.asarray(b, dtype=np.int64)
    if arr.shape != (graph.num_vertices,):
        raise ValueError("capacity vector must have one entry per vertex")
    return arr


def unwind_b_matching_stack(
    graph: Graph, stack: Sequence[int], capacities: np.ndarray
) -> list[int]:
    """Unwind a b-matching stack, adding edges while both endpoints have capacity."""
    remaining = capacities.astype(np.int64).copy()
    chosen: list[int] = []
    for edge_id in reversed(list(stack)):
        u, v = graph.edge_endpoints(int(edge_id))
        if remaining[u] > 0 and remaining[v] > 0:
            remaining[u] -= 1
            remaining[v] -= 1
            chosen.append(int(edge_id))
    return chosen


def local_ratio_b_matching(
    graph: Graph,
    b: Mapping[int, int] | Sequence[int] | int,
    *,
    epsilon: float = 0.1,
    order: Sequence[int] | np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> MatchingResult:
    """ε-adjusted local ratio algorithm for maximum weight b-matching.

    Follows Appendix D: selecting edge ``e = (u, v)`` of residual weight
    ``w`` reduces incident edges at ``u`` by ``w / b(u)`` and at ``v`` by
    ``w / b(v)``; an edge is treated as dead once its weight is at most
    ``(1 + ε)`` times the accumulated incident reductions.  Unwinding the
    stack greedily yields a ``(3 − 2/max(2, b) + 2ε)``-approximation.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    capacities = _capacity_array(graph, b)
    if np.any(capacities < 1):
        raise ValueError("all capacities must be at least 1")
    m = graph.num_edges
    if order is None:
        order = np.arange(m) if rng is None else rng.permutation(m)
    phi = np.zeros(graph.num_vertices, dtype=np.float64)
    stack: list[int] = []
    for edge in np.asarray(order, dtype=np.int64):
        u, v = graph.edge_endpoints(int(edge))
        w = graph.edge_weight(int(edge))
        if w <= (1.0 + epsilon) * (phi[u] + phi[v]) + 1e-12:
            continue
        residual = w - phi[u] - phi[v]
        phi[u] += residual / capacities[u]
        phi[v] += residual / capacities[v]
        stack.append(int(edge))
    chosen = unwind_b_matching_stack(graph, stack, capacities)
    weight = float(graph.weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(
        chosen, weight, stack_size=len(stack), algorithm="local-ratio-b-matching-sequential"
    )
