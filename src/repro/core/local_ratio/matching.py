"""Algorithm 4 — randomized local ratio 2-approximation for maximum weight matching.

Section 5 of the paper.  Per iteration, every vertex samples roughly
``η / |E_i|`` of its alive incident edges (or all of them once few edges
remain); the union of the samples is sent to a central machine, which walks
the vertices and, for each, selects the heaviest sampled incident edge that
still has positive residual weight, performs the local ratio weight
reduction, and pushes the edge on a stack.  Edges whose residual weight
becomes non-positive die; Lemmas 5.3/5.4 show the maximum alive degree drops
by ``n^{µ/4}`` per iteration, giving ``O(c/µ)`` iterations.  Unwinding the
stack greedily yields a 2-approximate maximum weight matching
(Theorem 5.5/5.6).

With ``η = n`` (i.e. ``µ = 0``, linear space per machine) the same algorithm
terminates in ``O(log n)`` iterations (Appendix C, Theorem C.2); this is the
``mu0`` configuration exercised by the `fig1-matching-mu0` experiment.

The weight reductions are maintained through per-vertex potentials ``φ(v)``
(the sum of reductions applied to edges incident to ``v``), exactly as in the
MapReduce implementation of Theorem 5.6: the residual weight of an un-pushed
edge ``{u, v}`` is ``w_e − φ(u) − φ(v)``.
"""

from __future__ import annotations

import numpy as np

from ...graphs.graph import Graph
from ...kernels import central_matching_pass
from ...mapreduce.exceptions import AlgorithmFailureError
from ..results import IterationStats, MatchingResult
from .sequential import unwind_matching_stack

__all__ = ["randomized_local_ratio_matching", "default_eta_for_graph"]

#: "Take everything" threshold from Line 6 of Algorithm 4 (``|E_i| < 4η``).
FULL_SAMPLE_MULTIPLIER = 4.0
#: Failure threshold from Line 10 of Algorithm 4 (``Σ_v |E'_v| > 8η``).
FAILURE_MULTIPLIER = 8.0


def default_eta_for_graph(graph: Graph, mu: float) -> int:
    """The paper's per-machine budget ``η = n^{1+µ}`` for a graph instance."""
    n = max(2, graph.num_vertices)
    return max(1, int(round(n ** (1.0 + mu))))


def randomized_local_ratio_matching(
    graph: Graph,
    eta: int,
    rng: np.random.Generator,
    *,
    max_iterations: int | None = None,
    on_failure: str = "resample",
    max_failures: int = 20,
) -> MatchingResult:
    """Run Algorithm 4 on ``graph`` with per-round sample budget ``η``.

    Parameters
    ----------
    graph:
        Weighted graph; weights must be positive for the guarantee to be
        meaningful (non-positive-weight edges are never selected).
    eta:
        Sample budget ``η`` (``n^{1+µ}`` in the paper, ``n`` for the
        linear-space variant of Appendix C).
    rng:
        Randomness source.
    max_iterations:
        Safety cap (defaults to ``10 + 20·⌈log2(m+2)⌉``, far above both the
        ``O(c/µ)`` and ``O(log n)`` bounds).
    on_failure / max_failures:
        Handling of the ``Σ_v |E'_v| > 8η`` failure event, as in
        :func:`~repro.core.local_ratio.set_cover.randomized_local_ratio_set_cover`.

    Returns
    -------
    MatchingResult
        Edge ids of a 2-approximate maximum weight matching plus the
        per-iteration trace (alive edge count, sampled incidences, words sent
        to the central machine, edges pushed).
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    if on_failure not in ("resample", "raise"):
        raise ValueError("on_failure must be 'resample' or 'raise'")
    n, m = graph.num_vertices, graph.num_edges
    if max_iterations is None:
        max_iterations = 10 + 20 * int(np.ceil(np.log2(m + 2)))

    edge_u = graph.edge_u
    edge_v = graph.edge_v
    weights = graph.weights
    phi = np.zeros(n, dtype=np.float64)
    on_stack = np.zeros(m, dtype=bool)
    alive = weights > 0  # E_i
    stack: list[int] = []
    iterations: list[IterationStats] = []
    failed_attempts = 0

    iteration = 0
    while alive.any():
        iteration += 1
        if iteration > max_iterations:
            raise AlgorithmFailureError(
                f"Algorithm 4 did not converge within {max_iterations} iterations"
            )
        alive_ids = np.flatnonzero(alive)
        num_alive = alive_ids.size
        full_sample = num_alive < FULL_SAMPLE_MULTIPLIER * eta

        attempts = 0
        while True:
            attempts += 1
            if full_sample:
                # E'_v = all alive edges incident to v: every alive edge is
                # present in both endpoints' samples.
                sampled_u = np.ones(num_alive, dtype=bool)
                sampled_v = np.ones(num_alive, dtype=bool)
            else:
                p = min(1.0, eta / num_alive)
                sampled_u = rng.random(num_alive) < p
                sampled_v = rng.random(num_alive) < p
            total_sampled = int(sampled_u.sum() + sampled_v.sum())
            if full_sample or total_sampled <= FAILURE_MULTIPLIER * eta:
                break
            failed_attempts += 1
            if on_failure == "raise":
                raise AlgorithmFailureError(
                    f"Σ_v |E'_v| = {total_sampled} exceeds 8η = {FAILURE_MULTIPLIER * eta:.0f}"
                )
            if attempts >= max_failures:
                raise AlgorithmFailureError(
                    f"sampling failed {attempts} consecutive times (|E_i| = {num_alive})"
                )

        # Group the sampled (edge, vertex) incidences by vertex: E'_v.
        sample_edges = np.concatenate([alive_ids[sampled_u], alive_ids[sampled_v]])
        sample_hosts = np.concatenate([edge_u[alive_ids[sampled_u]], edge_v[alive_ids[sampled_v]]])
        order = np.argsort(sample_hosts, kind="stable")
        sample_edges = sample_edges[order]
        sample_hosts = sample_hosts[order]
        boundaries = np.searchsorted(sample_hosts, np.arange(n + 1))

        # Central machine: walk the vertices, pick the heaviest sampled edge
        # with positive residual weight, reduce, push (batched kernel).
        pushed_this_round = central_matching_pass(
            edge_u, edge_v, weights, phi, on_stack, sample_edges, boundaries, stack
        )

        iterations.append(
            IterationStats(
                iteration=iteration,
                alive=int(num_alive),
                sampled=int(total_sampled if not full_sample else 2 * num_alive),
                sample_words=3 * int(total_sampled if not full_sample else 2 * num_alive),
                selected=pushed_this_round,
            )
        )

        # E_{i+1}: alive edges with positive residual weight that were not pushed.
        residual_all = weights - phi[edge_u] - phi[edge_v]
        alive = alive & ~on_stack & (residual_all > 1e-12)
        if full_sample:
            # After a full-sample pass every edge incident to a processed
            # vertex has been reduced by at least the maximum residual at that
            # vertex, so nothing survives (Lemma 2.2 analogue); exit cleanly.
            break

    matching = unwind_matching_stack(graph, stack)
    weight = float(weights[np.asarray(matching, dtype=np.int64)].sum()) if matching else 0.0
    return MatchingResult(
        edge_ids=matching,
        weight=weight,
        iterations=iterations,
        stack_size=len(stack),
        failed_attempts=failed_attempts,
        algorithm="randomized-local-ratio-matching",
    )
