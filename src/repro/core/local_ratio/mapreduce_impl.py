"""MapReduce (MPC) drivers for the randomized local ratio algorithms.

Each driver runs the corresponding algorithm and *executes its communication
pattern* on the simulated cluster (:mod:`repro.mapreduce`): the input is
placed on worker machines with the paper's placement rule, each sampling
iteration becomes a gather-to-central round, and the redistribution of the
central machine's results becomes either direct rounds (vertex cover,
matching — Theorems 2.4 / 5.6) or broadcast/aggregation trees of fan-out
``n^µ`` (general set cover).  The returned
:class:`~repro.mapreduce.metrics.RunMetrics` therefore contains the exact
quantities of Figure 1: number of rounds, maximum words per machine, and
total communication.

Memory budgets are enforced, not just measured: if an algorithm ever needs
more space on a machine than its theorem allows (up to the stated constant
factors), the driver raises
:class:`~repro.mapreduce.exceptions.MemoryExceededError` and the benchmark
fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...graphs.distributed import EDGE_WORDS, DistributedGraph
from ...graphs.graph import Graph
from ...mapreduce.cluster import Cluster
from ...mapreduce.engine import MPCContext
from ...mapreduce.metrics import RunMetrics
from ...setcover.instance import SetCoverInstance
from ..results import MatchingResult, SetCoverResult
from .b_matching import randomized_local_ratio_b_matching
from .matching import randomized_local_ratio_matching
from .set_cover import randomized_local_ratio_set_cover

__all__ = [
    "MPCParameters",
    "mpc_parameters_for_graph",
    "mpc_parameters_for_instance",
    "mpc_weighted_vertex_cover",
    "mpc_weighted_set_cover",
    "mpc_weighted_matching",
    "mpc_weighted_b_matching",
]

#: Constant-factor slack allowed on the theorems' space bounds.  The paper's
#: statements are O(·); the drivers enforce the bound up to this factor.
SPACE_SLACK = 16.0


@dataclass(frozen=True)
class MPCParameters:
    """Derived model parameters for one MPC run.

    Attributes
    ----------
    n:
        Problem-size parameter the space bound is expressed in (number of
        vertices / sets for graph problems, number of elements ``m`` for the
        greedy set cover algorithm).
    mu:
        Space exponent ``µ``.
    c:
        Densification exponent: input size is ``n^{1+c}``.
    eta:
        Sample budget ``η = n^{1+µ}``.
    num_machines:
        Number of worker machines ``M ≈ n^{c−µ}`` (at least 1).
    memory_per_machine:
        Enforced per-machine budget in words.
    fanout:
        Broadcast/aggregation tree fan-out (``n^µ``, at least 2).
    """

    n: int
    mu: float
    c: float
    eta: int
    num_machines: int
    memory_per_machine: int
    fanout: int


def mpc_parameters_for_graph(
    graph: Graph, mu: float, *, words_per_edge: int = EDGE_WORDS, space_factor: float = SPACE_SLACK
) -> MPCParameters:
    """Compute the MPC parameters for a graph problem with space ``O(n^{1+µ})``."""
    n = max(2, graph.num_vertices)
    m = max(1, graph.num_edges)
    c = max(mu, np.log(m) / np.log(n) - 1.0)
    eta = max(1, int(round(n ** (1.0 + mu))))
    input_words = words_per_edge * m
    num_machines = max(1, int(np.ceil(input_words / (words_per_edge * eta))))
    memory = int(np.ceil(space_factor * eta * words_per_edge))
    fanout = max(2, int(round(n**mu)))
    return MPCParameters(n, mu, float(c), eta, num_machines, memory, fanout)


def mpc_parameters_for_instance(
    instance: SetCoverInstance, mu: float, *, space_factor: float = SPACE_SLACK
) -> MPCParameters:
    """MPC parameters for the ``f``-approximation: space ``O(f · n^{1+µ})`` per machine."""
    n = max(2, instance.num_sets)
    m = max(1, instance.num_elements)
    f = max(1, instance.frequency)
    c = max(mu, np.log(m) / np.log(n) - 1.0)
    eta = max(1, int(round(n ** (1.0 + mu))))
    num_machines = max(1, int(np.ceil(m / eta)))
    memory = int(np.ceil(space_factor * f * eta))
    fanout = max(2, int(round(n**mu)))
    return MPCParameters(n, mu, float(c), eta, num_machines, memory, fanout)


# --------------------------------------------------------------------------- #
# Weighted set cover / vertex cover (Theorem 2.4)
# --------------------------------------------------------------------------- #
def _element_loads(instance: SetCoverInstance, params: MPCParameters) -> np.ndarray:
    """Per-machine word loads when elements are spread ``η`` per machine.

    Each element ``j`` stores its dual list ``T_j`` (``|T_j|`` words) plus an
    alive bit.
    """
    loads = np.zeros(params.num_machines, dtype=np.int64)
    for j in range(instance.num_elements):
        machine = min(params.num_machines - 1, j // params.eta)
        loads[machine] += instance.sets_containing(j).size + 1
    return loads


def mpc_weighted_set_cover(
    instance: SetCoverInstance,
    mu: float,
    rng: np.random.Generator,
    *,
    params: MPCParameters | None = None,
    strict: bool = True,
) -> tuple[SetCoverResult, RunMetrics]:
    """Theorem 2.4 (general ``f``): ``f``-approximate set cover in ``O((c/µ)²)`` rounds.

    The central machine's cover indices ``C`` are redistributed through a
    broadcast tree of degree ``n^µ`` and the new alive-count ``|U_{r+1}|`` is
    gathered back through the matching aggregation tree, so each sampling
    iteration costs ``O(c/µ)`` rounds.
    """
    params = params or mpc_parameters_for_instance(instance, mu)
    result = randomized_local_ratio_set_cover(instance, params.eta, rng)

    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster,
        algorithm="mpc-weighted-set-cover",
        default_fanout=params.fanout,
        strict=strict,
    )
    worker_loads = _element_loads(instance, params)
    cover_size = 0
    for stats in result.iterations:
        ctx.parallel_round(
            f"iteration {stats.iteration}: sample U' (|U_r|={stats.alive})",
            phase=f"iteration-{stats.iteration}",
            machine_loads=worker_loads,
        )
        ctx.gather_to_central(
            stats.sample_words + stats.sampled,
            f"iteration {stats.iteration}: local ratio on sample (|U'|={stats.sampled})",
            phase=f"iteration-{stats.iteration}",
            max_worker_send=int(worker_loads.max()) if worker_loads.size else 0,
        )
        cluster.central.clear()
        cover_size += stats.selected
        ctx.broadcast(
            max(1, cover_size),
            f"iteration {stats.iteration}: broadcast C (|C|={cover_size})",
            phase=f"iteration-{stats.iteration}",
        )
        ctx.aggregate(
            1,
            f"iteration {stats.iteration}: compute |U_r+1|",
            phase=f"iteration-{stats.iteration}",
        )
    metrics = ctx.finish(
        n=instance.num_sets,
        m=instance.num_elements,
        f=instance.frequency,
        mu=mu,
        c=params.c,
        eta=params.eta,
        num_machines=params.num_machines,
        sampling_iterations=len(result.iterations),
        failed_attempts=result.failed_attempts,
    )
    return result, metrics


def mpc_weighted_vertex_cover(
    graph: Graph,
    vertex_weights: np.ndarray,
    mu: float,
    rng: np.random.Generator,
    *,
    strict: bool = True,
) -> tuple[SetCoverResult, RunMetrics]:
    """Theorem 2.4 (``f = 2``): 2-approximate weighted vertex cover in ``O(c/µ)`` rounds.

    Uses the improved redistribution of the ``f = 2`` case: the central
    machine sends one bit per vertex to the machine hosting it, vertices
    forward the bit to their incident edges, and per-machine alive counts are
    summed at the central machine — a constant number of rounds per
    iteration instead of a broadcast tree.
    """
    instance = SetCoverInstance.from_vertex_cover(graph, vertex_weights)
    params = mpc_parameters_for_instance(instance, mu)
    result = randomized_local_ratio_set_cover(instance, params.eta, rng)
    result.algorithm = "randomized-local-ratio-vertex-cover"

    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster,
        algorithm="mpc-weighted-vertex-cover",
        default_fanout=params.fanout,
        strict=strict,
    )
    dist = DistributedGraph(graph, cluster, rng)
    worker_loads = dist.total_loads()
    for stats in result.iterations:
        phase = f"iteration-{stats.iteration}"
        ctx.parallel_round(
            f"iteration {stats.iteration}: sample edges (|U_r|={stats.alive})",
            phase=phase,
            machine_loads=worker_loads,
        )
        ctx.gather_to_central(
            stats.sample_words + stats.sampled,
            f"iteration {stats.iteration}: local ratio on sampled edges",
            phase=phase,
            max_worker_send=int(worker_loads.max()) if worker_loads.size else 0,
        )
        cluster.central.clear()
        # f = 2 redistribution: one bit per vertex, then vertex → incident edges.
        ctx.parallel_round(
            f"iteration {stats.iteration}: notify vertices of C",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=graph.num_vertices,
            messages=graph.num_vertices,
        )
        ctx.parallel_round(
            f"iteration {stats.iteration}: vertices inform incident edges; count U_r+1",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=2 * graph.num_edges + params.num_machines,
            messages=2 * graph.num_edges + params.num_machines,
        )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        f=2,
        mu=mu,
        c=params.c,
        eta=params.eta,
        num_machines=params.num_machines,
        sampling_iterations=len(result.iterations),
        failed_attempts=result.failed_attempts,
    )
    return result, metrics


# --------------------------------------------------------------------------- #
# Weighted matching (Theorem 5.6) and b-matching (Theorem D.3)
# --------------------------------------------------------------------------- #
def _replay_matching_rounds(
    ctx: MPCContext,
    cluster: Cluster,
    dist: DistributedGraph,
    iterations,
    graph: Graph,
    num_machines: int,
) -> None:
    """Common round pattern for Algorithms 4 and 7 (Theorem 5.6's parallelization)."""
    worker_loads = dist.total_loads()
    max_worker = int(worker_loads.max()) if worker_loads.size else 0
    for stats in iterations:
        phase = f"iteration-{stats.iteration}"
        ctx.parallel_round(
            f"iteration {stats.iteration}: sample E'_v (|E_i|={stats.alive})",
            phase=phase,
            machine_loads=worker_loads,
        )
        ctx.gather_to_central(
            stats.sample_words,
            f"iteration {stats.iteration}: local ratio on samples "
            f"(Σ|E'_v|={stats.sampled}, pushed {stats.selected})",
            phase=phase,
            max_worker_send=max_worker,
        )
        cluster.central.clear()
        ctx.parallel_round(
            f"iteration {stats.iteration}: send φ(v) and stack bits to vertices",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=graph.num_vertices + stats.selected,
            messages=graph.num_vertices,
        )
        ctx.parallel_round(
            f"iteration {stats.iteration}: vertices send φ to incident edges; compute |E_i+1|",
            phase=phase,
            machine_loads=worker_loads,
            words_communicated=2 * graph.num_edges + num_machines,
            messages=2 * graph.num_edges + num_machines,
        )


def mpc_weighted_matching(
    graph: Graph,
    mu: float,
    rng: np.random.Generator,
    *,
    eta: int | None = None,
    strict: bool = True,
) -> tuple[MatchingResult, RunMetrics]:
    """Theorem 5.6: 2-approximate maximum weight matching.

    ``O(c/µ)`` rounds with ``η = n^{1+µ}``; passing ``mu = 0`` (so
    ``η = n``) gives the ``O(log n)``-round, ``O(n)``-space configuration of
    Theorem C.2.
    """
    params = mpc_parameters_for_graph(graph, mu)
    if eta is None:
        eta = params.eta
    result = randomized_local_ratio_matching(graph, eta, rng)

    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster, algorithm="mpc-weighted-matching", default_fanout=params.fanout, strict=strict
    )
    dist = DistributedGraph(graph, cluster, rng)
    _replay_matching_rounds(ctx, cluster, dist, result.iterations, graph, params.num_machines)
    ctx.gather_to_central(
        EDGE_WORDS * max(1, result.stack_size),
        f"unwind stack ({result.stack_size} edges) on central machine",
        phase="unwind",
    )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        c=params.c,
        eta=eta,
        num_machines=params.num_machines,
        sampling_iterations=len(result.iterations),
        failed_attempts=result.failed_attempts,
        stack_size=result.stack_size,
    )
    return result, metrics


def mpc_weighted_b_matching(
    graph: Graph,
    b,
    mu: float,
    rng: np.random.Generator,
    *,
    epsilon: float = 0.1,
    strict: bool = True,
) -> tuple[MatchingResult, RunMetrics]:
    """Theorem D.3: ``(3 − 2/b + 2ε)``-approximate maximum weight b-matching.

    The per-machine budget grows to ``O(b·log(1/ε)·n^{1+µ})`` words, exactly
    as stated in the theorem.
    """
    params = mpc_parameters_for_graph(graph, mu)
    b_max = int(np.max(b)) if not np.isscalar(b) else int(b)
    delta = epsilon / (1.0 + epsilon)
    budget_factor = max(1.0, b_max * np.log(1.0 / delta))
    memory = int(np.ceil(params.memory_per_machine * budget_factor))
    params = MPCParameters(
        params.n, params.mu, params.c, params.eta, params.num_machines, memory, params.fanout
    )
    result = randomized_local_ratio_b_matching(graph, b, params.eta, rng, epsilon=epsilon)

    cluster = Cluster(params.num_machines, params.memory_per_machine)
    ctx = MPCContext(
        cluster, algorithm="mpc-weighted-b-matching", default_fanout=params.fanout, strict=strict
    )
    dist = DistributedGraph(graph, cluster, rng)
    _replay_matching_rounds(ctx, cluster, dist, result.iterations, graph, params.num_machines)
    ctx.gather_to_central(
        EDGE_WORDS * max(1, result.stack_size),
        f"unwind stack ({result.stack_size} edges) on central machine",
        phase="unwind",
    )
    metrics = ctx.finish(
        n=graph.num_vertices,
        m=graph.num_edges,
        mu=mu,
        c=params.c,
        eta=params.eta,
        b=b_max,
        epsilon=epsilon,
        num_machines=params.num_machines,
        sampling_iterations=len(result.iterations),
        stack_size=result.stack_size,
    )
    return result, metrics
