"""Algorithm 1 — randomized local ratio ``f``-approximation for weighted set cover.

The algorithm (Section 2.1 of the paper) repeatedly samples each still-alive
element independently with probability ``p = min(1, 2η/|U_r|)``, ships the
sample to a central machine, and runs the sequential local ratio method on
the sampled elements only.  Because the sequential method may process
elements in an arbitrary order, the output is still an exact
``f``-approximation (Theorem 2.3); the sampling merely determines the order
and — crucially — the weight reductions caused by the sample kill a constant
fraction of the *unsampled* elements, so only ``O(c/µ)`` iterations are
needed when ``m ≤ n^{1+c}`` and ``η = n^{1+µ}``.

Weighted vertex cover is the ``f = 2`` special case
(:func:`randomized_local_ratio_vertex_cover`).
"""

from __future__ import annotations

import numpy as np

from ...kernels import set_cover_reduction
from ...mapreduce.exceptions import AlgorithmFailureError
from ...setcover.instance import SetCoverInstance
from ..results import IterationStats, SetCoverResult

__all__ = [
    "randomized_local_ratio_set_cover",
    "randomized_local_ratio_vertex_cover",
    "default_eta",
]

#: Sample-size multiplier from Line 5 of Algorithm 1 (``p = min(1, 2η/|U_r|)``).
SAMPLE_MULTIPLIER = 2.0
#: Failure threshold from Line 6 of Algorithm 1 (``|U'| > 6η``).
FAILURE_MULTIPLIER = 6.0


def default_eta(num_sets: int, mu: float) -> int:
    """The paper's default per-machine budget ``η = n^{1+µ}``."""
    if num_sets <= 0:
        return 1
    return max(1, int(round(num_sets ** (1.0 + mu))))


def randomized_local_ratio_set_cover(
    instance: SetCoverInstance,
    eta: int,
    rng: np.random.Generator,
    *,
    max_iterations: int | None = None,
    on_failure: str = "resample",
    max_failures: int = 20,
) -> SetCoverResult:
    """Run Algorithm 1 on ``instance`` with per-round sample budget ``η``.

    Parameters
    ----------
    instance:
        The weighted set cover instance (``n`` sets over ``m`` elements).
    eta:
        Sample budget ``η``; the paper takes ``η = n^{1+µ}`` so a sample of
        ``O(η)`` elements (each with its ≤ ``f`` containing sets) fits on one
        machine.
    rng:
        Randomness source.
    max_iterations:
        Safety cap on the number of sampling iterations (defaults to
        ``4 + 4·⌈log(m+1)⌉``, far above the ``⌈c/µ⌉`` bound of Theorem 2.3).
    on_failure:
        What to do when a sample exceeds ``6η`` elements (an
        ``exp(-η)``-probability event): ``"resample"`` retries the iteration
        with a fresh sample, ``"raise"`` raises
        :class:`AlgorithmFailureError`.  Failed attempts are counted on the
        result either way.
    max_failures:
        Cap on consecutive resampling attempts before giving up.

    Returns
    -------
    SetCoverResult
        Chosen set ids, total weight and the per-iteration trace used by the
        MapReduce driver for round/space accounting.
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    if on_failure not in ("resample", "raise"):
        raise ValueError("on_failure must be 'resample' or 'raise'")
    m = instance.num_elements
    n = instance.num_sets
    if max_iterations is None:
        max_iterations = 4 + 4 * int(np.ceil(np.log2(m + 2)))

    elem_indptr, elem_indices = instance.element_incidence()
    set_indptr, set_indices = instance.set_incidence()
    element_frequencies = np.diff(elem_indptr)
    residual = instance.weights.astype(np.float64).copy()
    in_cover = np.zeros(n, dtype=bool)
    covered = np.zeros(m, dtype=bool)
    chosen: list[int] = []
    iterations: list[IterationStats] = []
    failed_attempts = 0

    def run_local_ratio_on(sample: np.ndarray) -> int:
        """Continue the global local ratio computation on the sampled elements."""
        return set_cover_reduction(
            elem_indptr,
            elem_indices,
            set_indptr,
            set_indices,
            residual,
            covered,
            in_cover,
            sample,
            chosen,
        )

    alive = np.flatnonzero(~covered)
    iteration = 0
    while alive.size:
        iteration += 1
        if iteration > max_iterations:
            raise AlgorithmFailureError(
                f"Algorithm 1 did not converge within {max_iterations} iterations"
            )
        p = min(1.0, SAMPLE_MULTIPLIER * eta / alive.size)
        attempts = 0
        while True:
            attempts += 1
            if p >= 1.0:
                sampled = alive.copy()
            else:
                mask = rng.random(alive.size) < p
                sampled = alive[mask]
            if sampled.size <= FAILURE_MULTIPLIER * eta:
                break
            failed_attempts += 1
            if on_failure == "raise":
                raise AlgorithmFailureError(
                    f"sample of size {sampled.size} exceeds 6η = {FAILURE_MULTIPLIER * eta:.0f}"
                )
            if attempts >= max_failures:
                raise AlgorithmFailureError(
                    f"sampling failed {attempts} consecutive times (|U_r| = {alive.size})"
                )
        # The random order within the sample exercises the order-robustness of
        # the sequential method; a permutation costs nothing and avoids any
        # accidental bias from element numbering.
        order = rng.permutation(sampled) if sampled.size else sampled
        selected = run_local_ratio_on(order)
        sample_words = int(element_frequencies[sampled].sum()) if sampled.size else 0
        iterations.append(
            IterationStats(
                iteration=iteration,
                alive=int(alive.size),
                sampled=int(sampled.size),
                sample_words=sample_words,
                selected=selected,
            )
        )
        alive = np.flatnonzero(~covered)
        if p >= 1.0:
            # Lemma 2.2: with p = 1 the local ratio pass covers everything.
            break

    weight = instance.cover_weight(chosen)
    return SetCoverResult(
        chosen_sets=chosen,
        weight=weight,
        iterations=iterations,
        failed_attempts=failed_attempts,
        algorithm="randomized-local-ratio-set-cover",
    )


def randomized_local_ratio_vertex_cover(
    graph,
    vertex_weights,
    eta: int,
    rng: np.random.Generator,
    *,
    on_failure: str = "resample",
) -> SetCoverResult:
    """Algorithm 1 specialised to weighted vertex cover (``f = 2``).

    The graph's edges are the elements and its vertices are the sets; the
    returned ``chosen_sets`` are vertex ids forming a 2-approximate minimum
    weight vertex cover.
    """
    instance = SetCoverInstance.from_vertex_cover(graph, vertex_weights)
    result = randomized_local_ratio_set_cover(instance, eta, rng, on_failure=on_failure)
    result.algorithm = "randomized-local-ratio-vertex-cover"
    return result
