"""Algorithm 7 — ε-adjusted randomized local ratio for maximum weight b-matching.

Appendix D of the paper.  The matching algorithm does not extend directly to
b-matching: selecting one edge at a vertex of capacity ``b`` only reduces the
incident weights by a ``1/b`` fraction, so a single selection no longer kills
a vertex's neighbourhood.  The fix is twofold:

* each vertex adds up to ``b(v)·ln(1/δ)`` sampled edges to the stack per
  iteration (``δ = ε/(1+ε)``), which multiplies residual weights of the
  non-selected incident edges by ``(1 − 1/b)^{b·ln(1/δ)} ≤ δ``;
* an edge is declared dead as soon as its weight is at most ``(1+ε)`` times
  the accumulated incident reductions (the *ε-adjusted* reduction), which
  together with the previous point removes all non-heavy edges.

The result, after greedily unwinding the stack subject to the capacities, is
a ``(3 − 2/max(2, b) + 2ε)``-approximate maximum weight b-matching
(Theorems D.1 / D.3).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ...graphs.graph import Graph
from ...kernels import capacity_array
from ...mapreduce.exceptions import AlgorithmFailureError
from ..results import IterationStats, MatchingResult
from .sequential import unwind_b_matching_stack

__all__ = ["randomized_local_ratio_b_matching"]


def randomized_local_ratio_b_matching(
    graph: Graph,
    b: Mapping[int, int] | Sequence[int] | int,
    eta: int,
    rng: np.random.Generator,
    *,
    epsilon: float = 0.1,
    max_iterations: int | None = None,
) -> MatchingResult:
    """Run Algorithm 7 on ``graph`` with capacities ``b`` and sample budget ``η``.

    Parameters
    ----------
    graph:
        Weighted graph with positive edge weights.
    b:
        Vertex capacities: a scalar, a per-vertex sequence, or a mapping.
    eta:
        Per-machine budget ``n^{1+µ}``; each vertex samples about
        ``b(v)·ln(1/δ)·η/n`` of its alive incident edges per iteration and
        the whole graph is processed directly once fewer than
        ``2·b_max·ln(1/δ)·η`` edges remain.
    rng:
        Randomness source.
    epsilon:
        The ε of the ε-adjusted reduction; the approximation factor is
        ``3 − 2/max(2, b_max) + 2ε``.
    max_iterations:
        Safety cap (defaults to ``10 + 20·⌈log2(m+2)⌉``).

    Returns
    -------
    MatchingResult
        Edge ids of a feasible b-matching and the per-iteration trace.
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive for the ε-adjusted reduction")
    capacities = capacity_array(graph.num_vertices, b)
    if np.any(capacities < 1):
        raise ValueError("all capacities must be at least 1")

    n, m = graph.num_vertices, graph.num_edges
    if max_iterations is None:
        max_iterations = 10 + 20 * int(np.ceil(np.log2(m + 2)))
    delta = epsilon / (1.0 + epsilon)
    log_term = float(np.log(1.0 / delta))
    b_max = int(capacities.max()) if capacities.size else 1
    # Per-vertex number of stack pushes per iteration (Line 13).
    pushes_per_vertex = np.maximum(1, np.ceil(capacities * log_term)).astype(np.int64)
    # Per-vertex sample size (Line 10): b(v)·ln(1/δ)·n^µ, expressed through η/n.
    per_vertex_sample = np.maximum(
        pushes_per_vertex, np.ceil(capacities * log_term * max(1.0, eta / max(1, n))).astype(np.int64)
    )
    full_sample_threshold = 2.0 * b_max * log_term * eta

    edge_u, edge_v, weights = graph.edge_u, graph.edge_v, graph.weights
    phi = np.zeros(n, dtype=np.float64)
    on_stack = np.zeros(m, dtype=bool)
    alive = weights > 0
    stack: list[int] = []
    iterations: list[IterationStats] = []

    # Precompute incident edge ids per vertex once; alive filtering is cheap.
    incident = [graph.incident_edges(v) for v in range(n)]

    iteration = 0
    while alive.any():
        iteration += 1
        if iteration > max_iterations:
            raise AlgorithmFailureError(
                f"Algorithm 7 did not converge within {max_iterations} iterations"
            )
        alive_count = int(alive.sum())
        full_sample = alive_count < full_sample_threshold

        sample_words = 0
        pushed_this_round = 0
        sampled_total = 0
        for v in range(n):
            inc = incident[v]
            if inc.size == 0:
                continue
            alive_inc = inc[alive[inc]]
            if alive_inc.size == 0:
                continue
            if full_sample:
                candidates = alive_inc
            else:
                k = min(int(per_vertex_sample[v]), alive_inc.size)
                candidates = rng.choice(alive_inc, size=k, replace=False)
            sampled_total += candidates.size
            sample_words += 3 * int(candidates.size)
            # Central machine: repeatedly take the heaviest remaining sampled
            # edge (by residual weight) and apply the ε-adjusted reduction
            # (Lines 11-17).  Edges that have already died under the ε-rule
            # are skipped without consuming the push budget; once the largest
            # residual is non-positive every remaining candidate at v is dead.
            budget = int(pushes_per_vertex[v]) if not full_sample else candidates.size
            remaining = np.asarray(candidates, dtype=np.int64)
            pushes_done = 0
            while remaining.size and pushes_done < budget:
                res = np.where(
                    on_stack[remaining],
                    -np.inf,
                    weights[remaining] - phi[edge_u[remaining]] - phi[edge_v[remaining]],
                )
                best_pos = int(np.argmax(res))
                best_edge = int(remaining[best_pos])
                best_res = float(res[best_pos])
                if best_res <= 1e-12:
                    break
                dead_threshold = (1.0 + epsilon) * (
                    phi[edge_u[best_edge]] + phi[edge_v[best_edge]]
                )
                if weights[best_edge] <= dead_threshold + 1e-12:
                    # Dead under the ε-adjusted rule: drop it and keep looking.
                    remaining = np.delete(remaining, best_pos)
                    continue
                uu, vv = int(edge_u[best_edge]), int(edge_v[best_edge])
                phi[uu] += best_res / capacities[uu]
                phi[vv] += best_res / capacities[vv]
                on_stack[best_edge] = True
                stack.append(best_edge)
                pushed_this_round += 1
                pushes_done += 1
                remaining = np.delete(remaining, best_pos)

        iterations.append(
            IterationStats(
                iteration=iteration,
                alive=alive_count,
                sampled=int(sampled_total),
                sample_words=int(sample_words),
                selected=pushed_this_round,
            )
        )

        # ε-adjusted death rule (Line 18): an edge survives only if its weight
        # exceeds (1+ε)·(φ(u)+φ(v)).
        survives = weights > (1.0 + epsilon) * (phi[edge_u] + phi[edge_v]) + 1e-12
        new_alive = alive & ~on_stack & survives
        if full_sample and new_alive.sum() >= alive_count and pushed_this_round == 0:
            # Degenerate guard: nothing was selected and nothing died (can only
            # happen with pathological weights); stop rather than loop forever.
            break
        alive = new_alive
        if full_sample and not alive.any():
            break

    chosen = unwind_b_matching_stack(graph, stack, capacities)
    weight = float(weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(
        edge_ids=chosen,
        weight=weight,
        iterations=iterations,
        stack_size=len(stack),
        failed_attempts=0,
        algorithm="randomized-local-ratio-b-matching",
    )
