"""Randomized local ratio algorithms (Sections 2, 5 and Appendices C, D)."""

from .b_matching import randomized_local_ratio_b_matching
from .mapreduce_impl import (
    MPCParameters,
    mpc_parameters_for_graph,
    mpc_parameters_for_instance,
    mpc_weighted_b_matching,
    mpc_weighted_matching,
    mpc_weighted_set_cover,
    mpc_weighted_vertex_cover,
)
from .matching import default_eta_for_graph, randomized_local_ratio_matching
from .sequential import (
    local_ratio_b_matching,
    local_ratio_matching,
    local_ratio_set_cover,
    local_ratio_vertex_cover,
    unwind_b_matching_stack,
    unwind_matching_stack,
)
from .set_cover import (
    default_eta,
    randomized_local_ratio_set_cover,
    randomized_local_ratio_vertex_cover,
)

__all__ = [
    "local_ratio_set_cover",
    "local_ratio_vertex_cover",
    "local_ratio_matching",
    "local_ratio_b_matching",
    "unwind_matching_stack",
    "unwind_b_matching_stack",
    "randomized_local_ratio_set_cover",
    "randomized_local_ratio_vertex_cover",
    "randomized_local_ratio_matching",
    "randomized_local_ratio_b_matching",
    "default_eta",
    "default_eta_for_graph",
    "MPCParameters",
    "mpc_parameters_for_graph",
    "mpc_parameters_for_instance",
    "mpc_weighted_set_cover",
    "mpc_weighted_vertex_cover",
    "mpc_weighted_matching",
    "mpc_weighted_b_matching",
]
