"""The paper's algorithmic contributions.

* :mod:`repro.core.local_ratio` — randomized local ratio: weighted set
  cover / vertex cover (Algorithm 1), weighted matching (Algorithm 4),
  weighted b-matching (Algorithm 7).
* :mod:`repro.core.hungry_greedy` — hungry-greedy: maximal independent set
  (Algorithms 2 and 6), maximal clique (Appendix B), greedy weighted set
  cover (Algorithm 3).
* :mod:`repro.core.colouring` — ``(1 + o(1))∆`` vertex and edge colouring
  (Algorithm 5 and Remark 6.5).
"""

from . import colouring, hungry_greedy, local_ratio
from .results import (
    CliqueResult,
    ColouringResult,
    IndependentSetResult,
    IterationStats,
    MatchingResult,
    SetCoverResult,
)

__all__ = [
    "local_ratio",
    "hungry_greedy",
    "colouring",
    "IterationStats",
    "SetCoverResult",
    "MatchingResult",
    "IndependentSetResult",
    "CliqueResult",
    "ColouringResult",
]
