"""Single source of the package version.

The authoritative number lives in ``pyproject.toml`` (``[project] version``).
In a source checkout (``PYTHONPATH=src``) it is read from there; in an
installed environment, from the installation metadata.  Everything in the
package — ``repro.__version__``, ``repro --version`` — imports it from here,
so the number exists in exactly one place.
"""

from __future__ import annotations

import os
import re

__all__ = ["__version__"]

_FALLBACK = "0.0.0+unknown"


def _parse_pyproject(raw: bytes) -> str | None:
    """Extract ``[project] version`` — but only if the project is ``repro``."""
    try:
        import tomllib  # Python 3.11+

        project = tomllib.loads(raw.decode("utf-8")).get("project", {})
        if project.get("name") != "repro":
            return None
        version = project.get("version")
        return str(version) if version else None
    except ModuleNotFoundError:
        if not re.search(rb'^name\s*=\s*"repro"', raw, re.MULTILINE):
            return None
        match = re.search(rb'^version\s*=\s*"([^"]+)"', raw, re.MULTILINE)
        return match.group(1).decode("utf-8") if match else None


def _from_pyproject() -> str | None:
    """Read the version from the checkout's ``pyproject.toml``, if present.

    Never raises: an unreadable or malformed file (e.g. mid-edit), or an
    unrelated ancestor project's ``pyproject.toml``, simply yields ``None``
    so the metadata/fallback paths take over — importing the package must
    not depend on the state of nearby TOML files.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(4):  # src/repro → src → repo root
        candidate = os.path.join(here, "pyproject.toml")
        if os.path.isfile(candidate):
            try:
                with open(candidate, "rb") as fh:
                    return _parse_pyproject(fh.read())
            except Exception:
                return None
        here = os.path.dirname(here)
    return None


def _from_metadata() -> str | None:
    """Read the version of an installed ``repro`` distribution."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8
        return None
    try:
        return version("repro")
    except PackageNotFoundError:
        return None


__version__ = _from_pyproject() or _from_metadata() or _FALLBACK
