"""Sequential colouring baselines.

* :func:`greedy_colouring` — first-fit greedy vertex colouring over the whole
  graph, using at most ``∆ + 1`` colours.  This is the per-group subroutine
  of Algorithm 5 and, run globally, the sequential comparison point of the
  vertex colouring benchmark.
* :func:`largest_first_colouring` — greedy with the largest-degree-first
  order (Welsh–Powell), typically using fewer colours in practice.
"""

from __future__ import annotations

import numpy as np

from ..core.results import ColouringResult
from ..graphs.graph import Graph

__all__ = ["greedy_colouring", "largest_first_colouring"]


def _first_fit(graph: Graph, order: np.ndarray) -> dict[int, int]:
    colours: dict[int, int] = {}
    for v in order:
        v = int(v)
        taken = {colours[int(w)] for w in graph.neighbors(v) if int(w) in colours}
        colour = 0
        while colour in taken:
            colour += 1
        colours[v] = colour
    return colours


def greedy_colouring(graph: Graph, order: np.ndarray | None = None) -> ColouringResult:
    """First-fit greedy vertex colouring (``≤ ∆ + 1`` colours)."""
    order = np.arange(graph.num_vertices) if order is None else np.asarray(order, dtype=np.int64)
    colours = _first_fit(graph, order)
    return ColouringResult(dict(colours), num_groups=1, algorithm="greedy-colouring")


def largest_first_colouring(graph: Graph) -> ColouringResult:
    """Welsh–Powell: greedy colouring in order of decreasing degree."""
    order = np.argsort(-graph.degrees(), kind="stable")
    colours = _first_fit(graph, order)
    return ColouringResult(dict(colours), num_groups=1, algorithm="largest-first-colouring")
