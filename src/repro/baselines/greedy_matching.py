"""Sequential matching baselines.

* :func:`greedy_matching` — sort edges by weight and add greedily; the
  classical sequential 2-approximation for maximum weight matching.
* :func:`exact_matching` — exact maximum weight matching via the blossom
  algorithm (NetworkX); used by the benchmark harness to compute true
  approximation ratios on moderate-size graphs.
* :func:`greedy_b_matching` — the natural greedy generalization under vertex
  capacities (also a baseline for Appendix D's algorithm).
* :func:`exact_b_matching_small` — brute force over edge subsets, only for
  tiny graphs, used by the unit tests to validate approximation guarantees
  exactly.
"""

from __future__ import annotations

from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from ..core.results import MatchingResult
from ..graphs.graph import Graph
from ..graphs.validation import is_b_matching

__all__ = [
    "greedy_matching",
    "greedy_b_matching",
    "exact_matching",
    "exact_b_matching_small",
]


def greedy_matching(graph: Graph) -> MatchingResult:
    """Greedy maximum weight matching: scan edges by decreasing weight."""
    order = np.argsort(-graph.weights, kind="stable")
    matched = np.zeros(graph.num_vertices, dtype=bool)
    chosen: list[int] = []
    for e in order:
        e = int(e)
        u, v = graph.edge_endpoints(e)
        if graph.edge_weight(e) <= 0:
            break
        if not matched[u] and not matched[v]:
            matched[u] = True
            matched[v] = True
            chosen.append(e)
    weight = float(graph.weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(chosen, weight, algorithm="greedy-matching")


def greedy_b_matching(graph: Graph, b: Mapping[int, int] | Sequence[int] | int) -> MatchingResult:
    """Greedy b-matching: scan edges by decreasing weight, respect capacities."""
    if isinstance(b, Mapping):
        capacity = np.array([int(b.get(v, 1)) for v in range(graph.num_vertices)], dtype=np.int64)
    elif np.isscalar(b):
        capacity = np.full(graph.num_vertices, int(b), dtype=np.int64)  # type: ignore[arg-type]
    else:
        capacity = np.asarray(b, dtype=np.int64)
    order = np.argsort(-graph.weights, kind="stable")
    chosen: list[int] = []
    for e in order:
        e = int(e)
        if graph.edge_weight(e) <= 0:
            break
        u, v = graph.edge_endpoints(e)
        if capacity[u] > 0 and capacity[v] > 0:
            capacity[u] -= 1
            capacity[v] -= 1
            chosen.append(e)
    weight = float(graph.weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(chosen, weight, algorithm="greedy-b-matching")


def exact_matching(graph: Graph) -> MatchingResult:
    """Exact maximum weight matching (blossom algorithm via NetworkX)."""
    import networkx as nx

    g = graph.to_networkx()
    pairs = nx.max_weight_matching(g, maxcardinality=False)
    # Translate vertex pairs back to edge ids.
    edge_lookup: dict[tuple[int, int], int] = {}
    for e in range(graph.num_edges):
        u, v = graph.edge_endpoints(e)
        edge_lookup[(u, v)] = e
        edge_lookup[(v, u)] = e
    chosen = [edge_lookup[(int(a), int(b))] for a, b in pairs]
    weight = float(graph.weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(sorted(chosen), weight, algorithm="exact-matching")


def exact_b_matching_small(
    graph: Graph, b: Mapping[int, int] | Sequence[int] | int, *, max_edges: int = 18
) -> MatchingResult:
    """Exact maximum weight b-matching by exhaustive search (tiny graphs only)."""
    m = graph.num_edges
    if m > max_edges:
        raise ValueError(
            f"exact_b_matching_small is limited to {max_edges} edges (got {m}); "
            "use a smaller instance"
        )
    best_weight = 0.0
    best: list[int] = []
    edge_ids = list(range(m))
    for k in range(1, m + 1):
        for subset in combinations(edge_ids, k):
            if not is_b_matching(graph, subset, b):
                continue
            weight = float(graph.weights[list(subset)].sum())
            if weight > best_weight:
                best_weight = weight
                best = list(subset)
    return MatchingResult(best, best_weight, algorithm="exact-b-matching-bruteforce")
