"""Luby's randomized parallel maximal independent set algorithm.

Luby (1986): in each round every still-active vertex draws a uniform random
value; a vertex joins the independent set if its value is a strict local
minimum among its active neighbours; chosen vertices and their neighbours
are removed.  The algorithm terminates in ``O(log n)`` rounds in expectation
and translates directly to an ``O(log n)``-round MapReduce algorithm (one
machine per PRAM processor), which is the comparison point the paper's
hungry-greedy MIS (constant rounds for ``m = n^{1+c}``) improves upon.
"""

from __future__ import annotations

import numpy as np

from ..core.results import IndependentSetResult, IterationStats
from ..graphs.graph import Graph

__all__ = ["luby_mis"]


def luby_mis(graph: Graph, rng: np.random.Generator) -> IndependentSetResult:
    """Run Luby's algorithm on ``graph``.

    Returns an :class:`IndependentSetResult` whose iteration trace records,
    per round, the number of active vertices (``alive``) and how many joined
    the independent set (``selected``).
    """
    n = graph.num_vertices
    active = np.ones(n, dtype=bool)
    in_set = np.zeros(n, dtype=bool)
    iterations: list[IterationStats] = []
    edge_u, edge_v = graph.edge_u, graph.edge_v
    round_index = 0
    while active.any():
        round_index += 1
        values = rng.random(n)
        # A vertex wins if it is active and its value beats every active neighbour.
        loses = np.zeros(n, dtype=bool)
        both_active = active[edge_u] & active[edge_v]
        u_act, v_act = edge_u[both_active], edge_v[both_active]
        u_wins = values[u_act] < values[v_act]
        loses[v_act[u_wins]] = True
        loses[u_act[~u_wins]] = True
        winners = np.flatnonzero(active & ~loses)
        in_set[winners] = True
        # Deactivate winners and their neighbours.
        newly_inactive = np.zeros(n, dtype=bool)
        newly_inactive[winners] = True
        winner_mask = np.zeros(n, dtype=bool)
        winner_mask[winners] = True
        incident = winner_mask[edge_u] | winner_mask[edge_v]
        newly_inactive[edge_u[incident]] = True
        newly_inactive[edge_v[incident]] = True
        alive_before = int(active.sum())
        active &= ~newly_inactive
        iterations.append(
            IterationStats(
                iteration=round_index,
                alive=alive_before,
                sampled=alive_before,
                sample_words=alive_before,
                selected=int(winners.size),
            )
        )
    return IndependentSetResult(
        vertices=[int(v) for v in np.flatnonzero(in_set)],
        iterations=iterations,
        algorithm="luby-mis",
    )
