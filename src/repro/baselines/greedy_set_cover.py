"""Sequential greedy baselines for weighted set cover.

* :func:`greedy_set_cover` — Chvátal's greedy algorithm: repeatedly add the
  set maximizing ``|S \\ C| / w``; an ``H_∆``-approximation.
* :func:`epsilon_greedy_set_cover` — the relaxed rule used by the paper
  (following Kumar et al.): any set within a ``(1 + ε)`` factor of the best
  cost-effectiveness may be chosen; a ``(1 + ε)·H_∆``-approximation.  Used by
  tests to check that Algorithm 3's solutions are never worse than what the
  ε-greedy rule allows.

Both keep their selection structure (lazy max-heap / full ε-bucket) but read
``|S \\ C|`` from the incrementally maintained
:class:`~repro.kernels.coverage.CoverageCounter` instead of rescanning each
set's element list, which removes the interpreter-bound inner loops without
changing a single returned bit.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.results import SetCoverResult
from ..kernels import CoverageCounter
from ..setcover.instance import SetCoverInstance

__all__ = ["greedy_set_cover", "epsilon_greedy_set_cover", "harmonic_number"]


def harmonic_number(k: int) -> float:
    """``H_k = 1 + 1/2 + … + 1/k`` (0 for ``k ≤ 0``)."""
    if k <= 0:
        return 0.0
    return float(np.sum(1.0 / np.arange(1, k + 1)))


def greedy_set_cover(instance: SetCoverInstance) -> SetCoverResult:
    """Chvátal's greedy algorithm (lazy-evaluation implementation).

    Uses a max-heap of cost-effectiveness values with lazy re-evaluation:
    because ``|S \\ C|`` only decreases over time, a popped entry whose value
    is stale can simply be re-pushed with its recomputed value.

    When every weight is below ``10^10`` the heap is bypassed entirely: a
    stale entry's stored value then exceeds its current value by at least
    ``1/w > 10^{-10}``, far above the ``10^{-12}`` staleness tolerance, so
    the lazy heap provably accepts exactly the set with the maximum current
    effectiveness (smallest id on ties — the heap's ``(-value, id)`` order).
    A vectorized argmax over the counter's residual counts selects the same
    sequence without the per-pop Python heap traffic.
    """
    n, m = instance.num_sets, instance.num_elements
    chosen: list[int] = []
    if m == 0 or n == 0:
        return SetCoverResult([], 0.0, algorithm="greedy-set-cover")
    weights = instance.weights
    counter = CoverageCounter(instance)

    if float(weights.max()) < 1e10:
        residual_counts = counter.residual_counts
        ratios = np.empty(n, dtype=np.float64)
        while counter.num_covered < m:
            np.divide(residual_counts, weights, out=ratios)
            best = int(np.argmax(ratios))
            if ratios[best] <= 0.0:
                break
            chosen.append(best)
            counter.add_set(best)
        return SetCoverResult(
            chosen, instance.cover_weight(chosen), algorithm="greedy-set-cover"
        )

    # Initial effectiveness |S| / w for every set, in one vectorized pass.
    initial = counter.residual_counts / weights
    heap: list[tuple[float, int]] = [(-float(initial[i]), i) for i in range(n)]
    heapq.heapify(heap)
    while not counter.all_covered() and heap:
        neg_value, set_id = heapq.heappop(heap)
        current = counter.uncovered_count(set_id) / float(weights[set_id])
        if current <= 0.0:
            continue
        if -neg_value > current + 1e-12:
            heapq.heappush(heap, (-current, set_id))
            continue
        chosen.append(set_id)
        counter.add_set(set_id)
    return SetCoverResult(
        chosen, instance.cover_weight(chosen), algorithm="greedy-set-cover"
    )


def epsilon_greedy_set_cover(
    instance: SetCoverInstance,
    epsilon: float,
    rng: np.random.Generator,
) -> SetCoverResult:
    """The ε-greedy rule: pick uniformly among the sets within ``(1+ε)`` of the best ratio.

    This is the sequential algorithm whose guarantee (``(1 + ε)·H_∆``) the
    paper's Algorithm 3 implements in MapReduce; the randomized choice makes
    it a useful statistical baseline.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    n, m = instance.num_sets, instance.num_elements
    chosen: list[int] = []
    weights = instance.weights
    counter = CoverageCounter(instance)
    while m and not counter.all_covered():
        residual = counter.residual_counts.astype(np.float64)
        ratios = residual / weights
        best = float(ratios.max())
        if best <= 0.0:
            break
        candidates = np.flatnonzero(ratios >= best / (1.0 + epsilon) - 1e-15)
        pick = int(candidates[rng.integers(0, candidates.size)])
        chosen.append(pick)
        counter.add_set(pick)
    return SetCoverResult(
        chosen, instance.cover_weight(chosen), algorithm="epsilon-greedy-set-cover"
    )
