"""Sequential greedy baselines for weighted set cover.

* :func:`greedy_set_cover` — Chvátal's greedy algorithm: repeatedly add the
  set maximizing ``|S \\ C| / w``; an ``H_∆``-approximation.
* :func:`epsilon_greedy_set_cover` — the relaxed rule used by the paper
  (following Kumar et al.): any set within a ``(1 + ε)`` factor of the best
  cost-effectiveness may be chosen; a ``(1 + ε)·H_∆``-approximation.  Used by
  tests to check that Algorithm 3's solutions are never worse than what the
  ε-greedy rule allows.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.results import SetCoverResult
from ..setcover.instance import SetCoverInstance

__all__ = ["greedy_set_cover", "epsilon_greedy_set_cover", "harmonic_number"]


def harmonic_number(k: int) -> float:
    """``H_k = 1 + 1/2 + … + 1/k`` (0 for ``k ≤ 0``)."""
    if k <= 0:
        return 0.0
    return float(np.sum(1.0 / np.arange(1, k + 1)))


def greedy_set_cover(instance: SetCoverInstance) -> SetCoverResult:
    """Chvátal's greedy algorithm (lazy-evaluation implementation).

    Uses a max-heap of cost-effectiveness values with lazy re-evaluation:
    because ``|S \\ C|`` only decreases over time, a popped entry whose value
    is stale can simply be re-pushed with its recomputed value.
    """
    n, m = instance.num_sets, instance.num_elements
    covered = np.zeros(m, dtype=bool)
    chosen: list[int] = []
    if m == 0:
        return SetCoverResult([], 0.0, algorithm="greedy-set-cover")
    weights = instance.weights

    def effectiveness(set_id: int) -> float:
        elems = instance.set_elements(set_id)
        if elems.size == 0:
            return 0.0
        return float(np.count_nonzero(~covered[elems])) / float(weights[set_id])

    heap: list[tuple[float, int]] = [(-effectiveness(i), i) for i in range(n)]
    heapq.heapify(heap)
    num_covered = 0
    while num_covered < m and heap:
        neg_value, set_id = heapq.heappop(heap)
        current = effectiveness(set_id)
        if current <= 0.0:
            continue
        if -neg_value > current + 1e-12:
            heapq.heappush(heap, (-current, set_id))
            continue
        chosen.append(set_id)
        elems = instance.set_elements(set_id)
        newly = ~covered[elems]
        num_covered += int(np.count_nonzero(newly))
        covered[elems] = True
    return SetCoverResult(
        chosen, instance.cover_weight(chosen), algorithm="greedy-set-cover"
    )


def epsilon_greedy_set_cover(
    instance: SetCoverInstance,
    epsilon: float,
    rng: np.random.Generator,
) -> SetCoverResult:
    """The ε-greedy rule: pick uniformly among the sets within ``(1+ε)`` of the best ratio.

    This is the sequential algorithm whose guarantee (``(1 + ε)·H_∆``) the
    paper's Algorithm 3 implements in MapReduce; the randomized choice makes
    it a useful statistical baseline.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    n, m = instance.num_sets, instance.num_elements
    covered = np.zeros(m, dtype=bool)
    chosen: list[int] = []
    weights = instance.weights
    while m and not covered.all():
        residual = np.array(
            [
                int(np.count_nonzero(~covered[instance.set_elements(i)]))
                if instance.set_elements(i).size
                else 0
                for i in range(n)
            ],
            dtype=np.float64,
        )
        ratios = residual / weights
        best = float(ratios.max())
        if best <= 0.0:
            break
        candidates = np.flatnonzero(ratios >= best / (1.0 + epsilon) - 1e-15)
        pick = int(candidates[rng.integers(0, candidates.size)])
        chosen.append(pick)
        elems = instance.set_elements(pick)
        if elems.size:
            covered[elems] = True
    return SetCoverResult(
        chosen, instance.cover_weight(chosen), algorithm="epsilon-greedy-set-cover"
    )
