"""Misra–Gries constructive edge colouring (``∆ + 1`` colours).

The constructive proof of Vizing's theorem by Misra and Gries (1992) colours
the edges of any simple graph with at most ``∆ + 1`` colours in polynomial
time.  The paper uses it as the per-group local colouring step of its
``(1 + o(1))∆`` edge colouring algorithm (Remark 6.5), and we additionally
benchmark it as the sequential baseline for the edge colouring experiment.

The implementation follows the classical description: for each uncoloured
edge ``(u, v)`` build a maximal *fan* of ``u`` starting at ``v``, pick a
colour ``c`` free at ``u`` and a colour ``d`` free at the fan's last vertex,
invert the maximal ``cd``-path through ``u``, then rotate a prefix of the
fan and colour the last rotated edge ``d``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph

__all__ = ["misra_gries_edge_colouring"]


class _ColouringState:
    """Mutable edge-colouring state with per-vertex colour→edge lookup."""

    def __init__(self, graph: Graph, num_colours: int):
        self.graph = graph
        self.num_colours = num_colours
        self.colour: list[int | None] = [None] * graph.num_edges
        # at[v][c] = edge id of the edge at v coloured c (if any)
        self.at: list[dict[int, int]] = [dict() for _ in range(graph.num_vertices)]
        self.edge_index = _build_edge_index(graph)

    def edge_between(self, u: int, v: int) -> int:
        return self.edge_index[(u, v)]

    def is_free(self, vertex: int, colour: int) -> bool:
        return colour not in self.at[vertex]

    def first_free(self, vertex: int) -> int:
        for colour in range(self.num_colours):
            if colour not in self.at[vertex]:
                return colour
        raise RuntimeError("no free colour available — should be impossible with ∆+1 colours")

    def set_colour(self, edge: int, colour: int) -> None:
        u, v = self.graph.edge_endpoints(edge)
        old = self.colour[edge]
        if old is not None:
            self.at[u].pop(old, None)
            self.at[v].pop(old, None)
        self.colour[edge] = colour
        self.at[u][colour] = edge
        self.at[v][colour] = edge

    def uncolour(self, edge: int) -> None:
        u, v = self.graph.edge_endpoints(edge)
        old = self.colour[edge]
        if old is not None:
            self.at[u].pop(old, None)
            self.at[v].pop(old, None)
        self.colour[edge] = None


def _build_edge_index(graph: Graph) -> dict[tuple[int, int], int]:
    """Map ordered endpoint pairs to edge ids for O(1) lookup."""
    index: dict[tuple[int, int], int] = {}
    for e in range(graph.num_edges):
        u, v = graph.edge_endpoints(e)
        index[(u, v)] = e
        index[(v, u)] = e
    return index


def _build_fan(state: _ColouringState, u: int, v: int) -> list[int]:
    """Maximal fan of ``u`` starting at ``v``: successive edge colours are free on the previous fan vertex."""
    graph = state.graph
    fan = [v]
    in_fan = {v}
    extended = True
    while extended:
        extended = False
        last = fan[-1]
        for w in graph.neighbors(u):
            w = int(w)
            if w in in_fan:
                continue
            e = state.edge_between(u, w)
            colour = state.colour[e]
            if colour is None:
                continue
            if state.is_free(last, colour):
                fan.append(w)
                in_fan.add(w)
                extended = True
                break
    return fan


def _invert_cd_path(state: _ColouringState, u: int, c: int, d: int) -> None:
    """Invert the maximal path through ``u`` whose edges alternate colours ``c`` and ``d``.

    Since ``c`` is free at ``u`` the path leaves ``u`` (if at all) through an
    edge coloured ``d``.  Swapping ``c`` and ``d`` along the path keeps the
    colouring proper and makes ``d`` free at ``u``.
    """
    if c == d:
        return
    path: list[int] = []
    current, colour = u, d
    previous_edge = -1
    while True:
        edge = state.at[current].get(colour)
        if edge is None or edge == previous_edge:
            break
        path.append(edge)
        a, b = state.graph.edge_endpoints(edge)
        current = b if a == current else a
        colour = c if colour == d else d
        previous_edge = edge
    # Swap in two passes: uncolour every path edge first, then assign the
    # flipped colours.  Doing it edge by edge would transiently leave two
    # edges of the same colour at a shared path vertex and corrupt the
    # per-vertex colour→edge lookup table.
    new_colours = []
    for edge in path:
        old = state.colour[edge]
        assert old is not None
        new_colours.append((edge, c if old == d else d))
        state.uncolour(edge)
    for edge, new_colour in new_colours:
        state.set_colour(edge, new_colour)


def misra_gries_edge_colouring(graph: Graph) -> dict[int, int]:
    """Colour the edges of ``graph`` with at most ``∆ + 1`` colours.

    Returns a mapping from edge id to colour (integers in ``[0, ∆]``).
    """
    m = graph.num_edges
    if m == 0:
        return {}
    delta = graph.max_degree()
    state = _ColouringState(graph, delta + 1)

    for edge in range(m):
        u, v = graph.edge_endpoints(edge)
        fan = _build_fan(state, u, v)
        c = state.first_free(u)
        d = state.first_free(fan[-1])
        _invert_cd_path(state, u, c, d)
        # After the inversion, find the longest prefix of the fan that is
        # still a fan and whose last vertex has d free; rotate it.
        w_index: int | None = None
        for i, vertex in enumerate(fan):
            if i > 0:
                e_prev = state.edge_between(u, fan[i])
                colour_prev = state.colour[e_prev]
                if colour_prev is None or not state.is_free(fan[i - 1], colour_prev):
                    break
            if state.is_free(vertex, d):
                w_index = i
                break
        if w_index is None:
            # The classical argument guarantees a valid prefix exists; as a
            # defensive fallback (e.g. against floating assumptions broken by
            # unusual inputs) colour the edge with any colour free at both
            # endpoints, extending the palette if necessary.
            colour = 0
            while not (state.is_free(u, colour) and state.is_free(v, colour)):
                colour += 1
                if colour >= state.num_colours:
                    state.num_colours = colour + 1
            state.set_colour(edge, colour)
            continue
        # Rotate the prefix fan: shift each fan edge's colour to its predecessor.
        for i in range(w_index):
            e_next = state.edge_between(u, fan[i + 1])
            next_colour = state.colour[e_next]
            assert next_colour is not None
            target = state.edge_between(u, fan[i])
            state.uncolour(e_next)
            state.set_colour(target, next_colour)
        final_edge = state.edge_between(u, fan[w_index])
        state.set_colour(final_edge, d)

    return {e: int(state.colour[e]) for e in range(m) if state.colour[e] is not None}
