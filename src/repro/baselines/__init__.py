"""Baseline algorithms: sequential references, prior MapReduce techniques, exact solvers."""

from .exact import (
    exact_max_independent_set_small,
    exact_set_cover_small,
    exact_vertex_cover_small,
    fractional_matching_bound,
    lp_set_cover_bound,
    lp_vertex_cover_bound,
)
from .filtering import filtering_unweighted_matching, filtering_vertex_cover
from .greedy_colouring import greedy_colouring, largest_first_colouring
from .greedy_matching import (
    exact_b_matching_small,
    exact_matching,
    greedy_b_matching,
    greedy_matching,
)
from .greedy_set_cover import epsilon_greedy_set_cover, greedy_set_cover, harmonic_number
from .luby_mis import luby_mis
from .misra_gries import misra_gries_edge_colouring

__all__ = [
    "greedy_set_cover",
    "epsilon_greedy_set_cover",
    "harmonic_number",
    "luby_mis",
    "greedy_matching",
    "greedy_b_matching",
    "exact_matching",
    "exact_b_matching_small",
    "filtering_unweighted_matching",
    "filtering_vertex_cover",
    "greedy_colouring",
    "largest_first_colouring",
    "misra_gries_edge_colouring",
    "exact_vertex_cover_small",
    "exact_set_cover_small",
    "exact_max_independent_set_small",
    "lp_vertex_cover_bound",
    "lp_set_cover_bound",
    "fractional_matching_bound",
]
