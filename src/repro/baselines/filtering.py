"""The filtering technique of Lattanzi, Moseley, Suri and Vassilvitskii (SPAA 2011).

Filtering is the technique the paper's randomized local ratio descends from:
sample a random subset of edges that fits on one machine, compute a partial
solution on the sample, use it to discard edges, and repeat until the
remaining graph fits on a single machine.

Two classical instantiations are provided as baselines for Figure 1:

* :func:`filtering_unweighted_matching` — 2-approximate maximal matching for
  *unweighted* graphs in ``O(c/µ)`` rounds;
* :func:`filtering_vertex_cover` — the induced 2-approximation for
  unweighted vertex cover (endpoints of a maximal matching).

These are the ``[26]`` / ``[27]`` rows of Figure 1 that the paper's weighted
algorithms (Theorems 2.4 and 5.6) generalize.
"""

from __future__ import annotations

import numpy as np

from ..core.results import IterationStats, MatchingResult, SetCoverResult
from ..graphs.graph import Graph

__all__ = ["filtering_unweighted_matching", "filtering_vertex_cover"]


def _greedy_maximal_matching_on(
    graph: Graph, edge_ids: np.ndarray, matched: np.ndarray
) -> list[int]:
    """Greedy maximal matching restricted to ``edge_ids``, respecting ``matched``."""
    added: list[int] = []
    for e in edge_ids:
        e = int(e)
        u, v = graph.edge_endpoints(e)
        if not matched[u] and not matched[v]:
            matched[u] = True
            matched[v] = True
            added.append(e)
    return added


def filtering_unweighted_matching(
    graph: Graph,
    eta: int,
    rng: np.random.Generator,
    *,
    max_iterations: int | None = None,
) -> MatchingResult:
    """Lattanzi et al. filtering algorithm for (unweighted) maximal matching.

    Per round: sample each alive edge with probability ``min(1, η/|E_i|)``,
    compute a greedy maximal matching on the sample (respecting previously
    matched vertices), then drop every alive edge with a matched endpoint.
    Once fewer than ``η`` edges remain they are processed directly.  The
    matching produced is maximal and therefore a 2-approximation of the
    maximum (unweighted) matching; its matched vertex set is a 2-approximate
    vertex cover.
    """
    if eta <= 0:
        raise ValueError("eta must be positive")
    m = graph.num_edges
    if max_iterations is None:
        max_iterations = 20 + 10 * int(np.ceil(np.log2(m + 2)))
    matched = np.zeros(graph.num_vertices, dtype=bool)
    alive = np.ones(m, dtype=bool)
    chosen: list[int] = []
    iterations: list[IterationStats] = []
    iteration = 0
    while alive.any():
        iteration += 1
        if iteration > max_iterations:
            break
        alive_ids = np.flatnonzero(alive)
        if alive_ids.size <= eta:
            sample = alive_ids
        else:
            p = min(1.0, eta / alive_ids.size)
            sample = alive_ids[rng.random(alive_ids.size) < p]
        added = _greedy_maximal_matching_on(graph, rng.permutation(sample), matched)
        chosen.extend(added)
        iterations.append(
            IterationStats(
                iteration=iteration,
                alive=int(alive_ids.size),
                sampled=int(sample.size),
                sample_words=3 * int(sample.size),
                selected=len(added),
            )
        )
        alive &= ~matched[graph.edge_u] & ~matched[graph.edge_v]
        if alive_ids.size <= eta:
            break
    weight = float(graph.weights[np.asarray(chosen, dtype=np.int64)].sum()) if chosen else 0.0
    return MatchingResult(
        chosen, weight, iterations=iterations, algorithm="filtering-matching"
    )


def filtering_vertex_cover(
    graph: Graph,
    eta: int,
    rng: np.random.Generator,
) -> SetCoverResult:
    """2-approximate unweighted vertex cover: both endpoints of a filtering maximal matching."""
    matching = filtering_unweighted_matching(graph, eta, rng)
    cover: set[int] = set()
    for e in matching.edge_ids:
        u, v = graph.edge_endpoints(int(e))
        cover.add(u)
        cover.add(v)
    return SetCoverResult(
        sorted(cover),
        float(len(cover)),
        iterations=matching.iterations,
        algorithm="filtering-vertex-cover",
    )
