"""Exact and lower-bound reference solvers used to compute approximation ratios.

The benchmark harness never reports an approximation ratio without a
reference value.  Depending on instance size that reference is either

* an exact optimum from brute force (tiny instances, used in unit tests), or
* an LP relaxation bound (scipy ``linprog``), which lower-bounds the optimum
  of minimization problems (vertex cover, set cover) and upper-bounds the
  optimum of maximization problems (matching LP with odd-set constraints
  omitted, i.e. the fractional matching bound).

For maximum weight matching an exact combinatorial optimum is available at
moderate sizes through NetworkX's blossom implementation
(:func:`repro.baselines.greedy_matching.exact_matching`).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from ..graphs.graph import Graph
from ..setcover.instance import SetCoverInstance

__all__ = [
    "exact_vertex_cover_small",
    "exact_set_cover_small",
    "lp_vertex_cover_bound",
    "lp_set_cover_bound",
    "fractional_matching_bound",
    "exact_max_independent_set_small",
]


def exact_vertex_cover_small(
    graph: Graph, vertex_weights: Sequence[float] | np.ndarray, *, max_vertices: int = 18
) -> tuple[list[int], float]:
    """Exact minimum weight vertex cover by exhaustive search over vertex subsets.

    Only intended for tiny graphs (≤ ``max_vertices`` vertices); the unit
    tests use it to validate the 2-approximation guarantee exactly.
    """
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(f"exact_vertex_cover_small limited to {max_vertices} vertices (got {n})")
    weights = np.asarray(vertex_weights, dtype=np.float64)
    best_cost = float(weights.sum())
    best = list(range(n))
    edge_u, edge_v = graph.edge_u, graph.edge_v
    for bits in range(1 << n):
        mask = np.array([(bits >> v) & 1 for v in range(n)], dtype=bool)
        if graph.num_edges and not np.all(mask[edge_u] | mask[edge_v]):
            continue
        cost = float(weights[mask].sum())
        if cost < best_cost:
            best_cost = cost
            best = [int(v) for v in np.flatnonzero(mask)]
    return best, best_cost


def exact_set_cover_small(
    instance: SetCoverInstance, *, max_sets: int = 16
) -> tuple[list[int], float]:
    """Exact minimum weight set cover by exhaustive search (tiny instances)."""
    n = instance.num_sets
    if n > max_sets:
        raise ValueError(f"exact_set_cover_small limited to {max_sets} sets (got {n})")
    best_cost = np.inf
    best: list[int] = []
    for k in range(0, n + 1):
        for subset in combinations(range(n), k):
            if not instance.is_cover(subset):
                continue
            cost = instance.cover_weight(subset)
            if cost < best_cost:
                best_cost = cost
                best = list(subset)
    return best, float(best_cost)


def exact_max_independent_set_small(graph: Graph, *, max_vertices: int = 18) -> list[int]:
    """Exact maximum independent set by exhaustive search (tiny graphs)."""
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(f"exact_max_independent_set_small limited to {max_vertices} vertices")
    from ..graphs.validation import is_independent_set

    best: list[int] = []
    for k in range(n, 0, -1):
        for subset in combinations(range(n), k):
            if is_independent_set(graph, subset):
                return list(subset)
    return best


def lp_vertex_cover_bound(graph: Graph, vertex_weights: Sequence[float] | np.ndarray) -> float:
    """LP relaxation lower bound on the minimum weight vertex cover.

    ``min Σ w_v x_v  s.t.  x_u + x_v ≥ 1 ∀ edges, 0 ≤ x ≤ 1``.
    """
    from scipy.optimize import linprog

    n, m = graph.num_vertices, graph.num_edges
    weights = np.asarray(vertex_weights, dtype=np.float64)
    if m == 0:
        return 0.0
    # -x_u - x_v ≤ -1
    rows = np.repeat(np.arange(m), 2)
    cols = np.concatenate([graph.edge_u[:, None], graph.edge_v[:, None]], axis=1).ravel()
    a_ub = np.zeros((m, n))
    a_ub[rows, cols] = -1.0
    b_ub = -np.ones(m)
    res = linprog(weights, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * n, method="highs")
    if not res.success:
        raise RuntimeError(f"vertex cover LP failed: {res.message}")
    return float(res.fun)


def lp_set_cover_bound(instance: SetCoverInstance) -> float:
    """LP relaxation lower bound on the minimum weight set cover."""
    from scipy.optimize import linprog

    n, m = instance.num_sets, instance.num_elements
    if m == 0:
        return 0.0
    a_ub = np.zeros((m, n))
    for j in range(m):
        owners = instance.sets_containing(j)
        a_ub[j, owners] = -1.0
    b_ub = -np.ones(m)
    res = linprog(
        instance.weights, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * n, method="highs"
    )
    if not res.success:
        raise RuntimeError(f"set cover LP failed: {res.message}")
    return float(res.fun)


def fractional_matching_bound(graph: Graph) -> float:
    """Fractional matching LP upper bound on the maximum weight matching.

    ``max Σ w_e x_e  s.t.  Σ_{e ∋ v} x_e ≤ 1 ∀ v, 0 ≤ x ≤ 1`` — at most a
    factor 3/2 above the integral optimum, and an upper bound on it.
    """
    from scipy.optimize import linprog

    n, m = graph.num_vertices, graph.num_edges
    if m == 0:
        return 0.0
    a_ub = np.zeros((n, m))
    for e in range(m):
        u, v = graph.edge_endpoints(e)
        a_ub[u, e] = 1.0
        a_ub[v, e] = 1.0
    b_ub = np.ones(n)
    res = linprog(-graph.weights, A_ub=a_ub, b_ub=b_ub, bounds=[(0, 1)] * m, method="highs")
    if not res.success:
        raise RuntimeError(f"matching LP failed: {res.message}")
    return float(-res.fun)
