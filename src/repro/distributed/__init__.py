"""Distributed coordinator/worker execution over the stdlib-HTTP protocol.

This package turns the simulated massively-parallel model into a real one:
a **coordinator** (the ``distributed`` sweep backend) shards
:class:`~repro.backends.SweepPoint`\\ s across **workers** — plain
``repro serve`` instances started with ``repro worker``, which extends the
service with three endpoints:

``POST /register``
    Open (or re-open) a sweep session on the worker.  A new sweep id
    clears any state left behind by a previous coordinator.
``POST /pull``
    Hand the worker a shard of JSON-encoded points; the worker enqueues
    them and executes in arrival order on a background thread.  Points the
    worker has already seen (same content digest) are dropped — the digest
    is the idempotency key, so retries and straggler re-dispatch are safe.
``POST /result``
    Collect completed results (and acknowledge previously collected ones,
    which lets the worker free them).  Lost responses are harmless: an
    un-acknowledged result is simply served again.

The coordinator polls ``/result``, requeues the outstanding points of a
worker that stops answering, and — per the coded-shuffle idea — replicates
the slowest in-flight points onto idle workers (``replicate`` copies,
first result wins).  Because every point is deterministic in its seed and
results travel as the same canonical JSON the
:class:`~repro.backends.ResultCache` uses, a distributed sweep is
byte-identical to a serial one no matter how work was shuffled, retried,
or replicated.  See ``docs/DISTRIBUTED.md``.
"""

from .coordinator import Coordinator, CoordinatorStats
from .protocol import (
    DistributedError,
    RemoteExecutionError,
    WorkerProtocolError,
    WorkerUnavailableError,
    callable_path,
    decode_point,
    decode_records,
    encode_point,
    encode_records,
    payload_words,
    resolve_callable,
)
from .worker import WorkerState

__all__ = [
    "Coordinator",
    "CoordinatorStats",
    "DistributedError",
    "RemoteExecutionError",
    "WorkerProtocolError",
    "WorkerUnavailableError",
    "WorkerState",
    "callable_path",
    "decode_point",
    "decode_records",
    "encode_point",
    "encode_records",
    "payload_words",
    "resolve_callable",
]
