"""Worker-side state machine behind ``/register``, ``/pull``, ``/result``.

A :class:`WorkerState` is owned by a :class:`~repro.service.server.
SolverService` started in worker mode (``repro worker``).  It is a small
task queue with exactly-once semantics keyed by the point content digest:

* a pulled point whose digest was already queued, is executing, or has a
  stored result is **dropped** (counted as a duplicate) — this is what
  makes coordinator retries and straggler replication safe;
* completed results are held until the coordinator *acknowledges* them in
  a later ``/result`` call, so a lost response is re-served, never lost;
* registering a **new sweep id** clears all state — a crashed coordinator
  cannot poison the next sweep's queue.

Execution happens on one background thread, one point at a time, through
:func:`~repro.backends.run_sweep` — so a worker-local ``--cache-dir``
replays repeats, and the results a worker hands back are (by the backend
contract) identical to what serial execution would have produced.  The
worker is the unit of parallelism: run more workers, not more threads.

MPC round points (experiment names starting with ``"mpc:"``, produced by
:class:`~repro.mapreduce.executor.SweepRoundExecutor`) additionally feed
the worker's *measured* payload accounting — ``rounds_executed`` and
``round_words_total`` in the ``distributed`` section of ``/metrics`` — so
the simulator's load-violation bookkeeping has a real per-worker
counterpart.
"""

from __future__ import annotations

import os
import socket
import threading
from collections import deque
from typing import Any, Sequence

from ..backends import ResultCache, run_sweep
from ..backends.base import SweepPoint
from .protocol import (
    WorkerProtocolError,
    decode_point,
    encode_records,
    payload_words,
    point_key,
)

__all__ = ["WorkerState"]


class WorkerState:
    """Queue, executor thread, and counters for one worker process."""

    def __init__(
        self,
        *,
        backend: str = "serial",
        jobs: int | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        self.backend = backend
        self.jobs = jobs
        self.cache = cache
        self.worker_id = f"{socket.gethostname()}:{os.getpid()}"
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._sweep: str | None = None
        self._queue: deque[str] = deque()
        self._points: dict[str, SweepPoint] = {}
        self._completed: dict[str, dict[str, Any]] = {}
        self._running: str | None = None
        self._closed = False
        self._thread: threading.Thread | None = None
        # Counters (all under the lock).
        self.points_executed = 0
        self.points_failed = 0
        self.duplicates_dropped = 0
        self.pulls_total = 0
        self.results_served = 0
        self.sweeps_registered = 0
        self.rounds_executed = 0
        self.round_words_total = 0
        self.result_words_total = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        # The whole check-then-spawn must hold the lock: start() runs on the
        # event loop while close() runs on an executor thread, so an unlocked
        # read of ``_thread`` races close() nulling it and can spawn two
        # executors (or observe a half-joined thread).
        with self._work:
            if self._thread is not None and self._thread.is_alive():
                return
            self._closed = False
            thread = threading.Thread(
                target=self._run, name="repro-worker-executor", daemon=True
            )
            self._thread = thread
        thread.start()

    def close(self) -> None:
        with self._work:
            self._closed = True
            self._work.notify_all()
            thread = self._thread
            self._thread = None
        # Join outside the lock — ``_run`` needs it to observe ``_closed``
        # and exit; joining while holding it would deadlock until timeout.
        if thread is not None:
            thread.join(timeout=30)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and nothing is executing."""
        with self._work:
            return self._work.wait_for(
                lambda: not self._queue and self._running is None, timeout
            )

    # ------------------------------------------------------------------ #
    # Endpoint operations (called from the service's request path)
    # ------------------------------------------------------------------ #
    def register(self, sweep: str) -> dict[str, Any]:
        """Open a sweep session; a *new* sweep id clears all queue state."""
        if not isinstance(sweep, str) or not sweep:
            raise WorkerProtocolError("'sweep' must be a non-empty string")
        with self._work:
            if sweep != self._sweep:
                self._sweep = sweep
                self._queue.clear()
                self._points.clear()
                self._completed.clear()
                self.sweeps_registered += 1
            return {
                "worker_id": self.worker_id,
                "sweep": sweep,
                "backend": str(self.backend),
                "points_executed": self.points_executed,
            }

    def _check_sweep(self, sweep: Any) -> None:
        if sweep != self._sweep:
            raise WorkerProtocolError(
                f"sweep {sweep!r} is not registered on this worker "
                f"(current: {self._sweep!r}); POST /register first"
            )

    def pull(self, sweep: str, encoded_points: Sequence[dict[str, Any]]) -> dict[str, Any]:
        """Enqueue a shard of encoded points; duplicates are dropped."""
        decoded: list[tuple[str, SweepPoint]] = []
        for payload in encoded_points:
            point = decode_point(payload)
            decoded.append((point_key(point), point))
        accepted: list[str] = []
        duplicates: list[str] = []
        with self._work:
            self._check_sweep(sweep)
            for digest, point in decoded:
                if (
                    digest in self._points
                    or digest in self._completed
                    or digest == self._running
                ):
                    duplicates.append(digest)
                    continue
                self._points[digest] = point
                self._queue.append(digest)
                accepted.append(digest)
            self.pulls_total += 1
            self.duplicates_dropped += len(duplicates)
            self._work.notify_all()
        return {"accepted": accepted, "duplicates": duplicates}

    def collect(self, sweep: str, acked: Sequence[str] = ()) -> dict[str, Any]:
        """Return completed results; drop the ones the coordinator acked."""
        with self._work:
            self._check_sweep(sweep)
            for digest in acked:
                self._completed.pop(str(digest), None)
            completed = [dict(entry) for entry in self._completed.values()]
            self.results_served += len(completed)
            return {
                "completed": completed,
                "pending": len(self._queue) + (1 if self._running else 0),
                "running": self._running,
            }

    def stats(self) -> dict[str, Any]:
        """JSON-ready worker counters for the ``distributed`` /metrics key."""
        with self._lock:
            return {
                "worker_id": self.worker_id,
                "sweep": self._sweep,
                "queued": len(self._queue),
                "running": self._running,
                "unacked_results": len(self._completed),
                "points_executed": self.points_executed,
                "points_failed": self.points_failed,
                "duplicates_dropped": self.duplicates_dropped,
                "pulls_total": self.pulls_total,
                "results_served": self.results_served,
                "sweeps_registered": self.sweeps_registered,
                "result_words_total": self.result_words_total,
                "mpc": {
                    "rounds_executed": self.rounds_executed,
                    "round_words_total": self.round_words_total,
                },
            }

    # ------------------------------------------------------------------ #
    # Executor thread
    # ------------------------------------------------------------------ #
    def _execute(self, point: SweepPoint) -> dict[str, Any]:
        digest = point_key(point)
        try:
            [result] = run_sweep(
                [point], backend=self.backend, jobs=self.jobs, cache=self.cache
            )
            records = encode_records(result.records)
        except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
            return {"digest": digest, "error": f"{type(exc).__name__}: {exc}"}
        return {
            "digest": digest,
            "experiment": point.experiment,
            "signature": result.signature,
            "records": records,
        }

    def _account(self, point: SweepPoint, entry: dict[str, Any]) -> None:
        """Update counters for one finished point (lock held)."""
        if "error" in entry:
            self.points_failed += 1
            return
        self.points_executed += 1
        words = payload_words(entry["records"])
        self.result_words_total += words
        if point.experiment.startswith("mpc:"):
            # A real MPC round shard: account its measured payload so the
            # engine's load bookkeeping shows up on this worker's /metrics.
            self.rounds_executed += 1
            round_words = 0
            for record in entry["records"]:
                metrics = record.get("metrics", {})
                round_words += int(metrics.get("input_words", 0))
                round_words += int(metrics.get("output_words", 0))
            self.round_words_total += round_words or words

    def _run(self) -> None:
        while True:
            with self._work:
                self._work.wait_for(lambda: self._queue or self._closed)
                if self._closed:
                    return
                digest = self._queue.popleft()
                point = self._points[digest]
                sweep = self._sweep
                self._running = digest
            entry = self._execute(point)
            with self._work:
                self._points.pop(digest, None)
                self._running = None
                # A re-registration may have swapped the sweep mid-point;
                # only publish results that still belong to the sweep the
                # point was pulled under.
                if self._sweep == sweep and digest not in self._completed:
                    self._completed[digest] = entry
                self._account(point, entry)
                self._work.notify_all()
