"""The coordinator: shard points across workers, survive their failures.

The :class:`Coordinator` is the client half of the protocol in
:mod:`repro.distributed.protocol`.  One :meth:`Coordinator.run` call is one
sweep:

1. **Register** a fresh sweep id with every worker (dead ones are dropped
   up front; at least one must answer).
2. **Shard** the distinct points (by content digest) across the live
   workers with :func:`~repro.mapreduce.partition.balanced_partition` and
   hand each worker its shard in bounded ``/pull`` chunks.
3. **Poll** ``/result`` on every worker, acknowledging what it already
   collected.  A worker that fails ``max_failures`` consecutive calls is
   declared dead and its outstanding points are requeued onto the live
   workers — the digest idempotency key makes the re-dispatch safe even if
   the "dead" worker was merely slow and finishes anyway.
4. **Replicate stragglers**: when a worker runs dry while other workers
   still hold in-flight points, the longest-outstanding pending points are
   copied onto the idle worker (up to ``replicate`` live copies each; the
   first result wins).  This is the coded-shuffle trade — spend duplicate
   work to cut the straggler tail.

Every point is deterministic in its own seed and results travel as the
canonical ResultCache record payloads, so whichever worker answers first,
the assembled :class:`~repro.backends.PointResult` list is byte-identical
to serial execution.
"""

from __future__ import annotations

import http.client
import json
import secrets
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..backends.base import PointResult, SweepPoint, point_signature
from ..mapreduce.partition import balanced_partition
from .protocol import (
    DistributedError,
    RemoteExecutionError,
    WorkerProtocolError,
    WorkerUnavailableError,
    decode_records,
    encode_point,
    point_key,
)

__all__ = ["Coordinator", "CoordinatorStats", "WorkerClient"]

_JSON_HEADERS = {"Content-Type": "application/json"}


def _parse_address(address: str) -> tuple[str, int]:
    """``host:port`` or ``http://host:port`` → ``(host, port)``."""
    raw = address.strip()
    if "//" in raw:
        parsed = urllib.parse.urlparse(raw)
        if not parsed.hostname or not parsed.port:
            raise ValueError(f"worker address {address!r} needs host and port")
        return parsed.hostname, parsed.port
    host, sep, port = raw.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"worker address {address!r} is not host:port")
    return host, int(port)


class WorkerClient:
    """One persistent HTTP connection to one worker (reconnect-once retry)."""

    def __init__(self, address: str, *, timeout: float = 30.0) -> None:
        self.address = address
        self.host, self.port = _parse_address(address)
        self.timeout = float(timeout)
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def _exchange(self, path: str, body: bytes) -> tuple[int, bytes]:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        self._conn.request("POST", path, body, _JSON_HEADERS)
        response = self._conn.getresponse()
        return response.status, response.read()

    def call(self, path: str, payload: dict[str, Any]) -> dict[str, Any]:
        """POST one protocol message; returns the decoded JSON response."""
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        try:
            status, raw = self._exchange(path, body)
        except (http.client.HTTPException, OSError):
            # A kept-alive connection may have been dropped; one fresh
            # connection gets one retry before the worker counts as gone.
            self.close()
            try:
                status, raw = self._exchange(path, body)
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                raise WorkerUnavailableError(
                    f"worker {self.address} unreachable on {path}: {exc}"
                ) from exc
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise WorkerProtocolError(
                f"worker {self.address} answered {path} with invalid JSON"
            ) from exc
        if status != 200:
            raise WorkerProtocolError(
                f"worker {self.address} answered {path} with {status}: "
                f"{decoded.get('error', raw[:200])}"
            )
        if not isinstance(decoded, dict):
            raise WorkerProtocolError(
                f"worker {self.address} answered {path} with a non-object"
            )
        return decoded


@dataclass
class CoordinatorStats:
    """What one distributed sweep did, for benchmarks and smoke checks."""

    workers: int = 0
    points: int = 0
    distinct_points: int = 0
    dispatched: int = 0
    replicated: int = 0
    requeued: int = 0
    workers_lost: list[str] = field(default_factory=list)
    polls: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "points": self.points,
            "distinct_points": self.distinct_points,
            "dispatched": self.dispatched,
            "replicated": self.replicated,
            "requeued": self.requeued,
            "workers_lost": list(self.workers_lost),
            "polls": self.polls,
        }


class _WorkerSlot:
    """Coordinator-side bookkeeping for one worker."""

    def __init__(self, client: WorkerClient) -> None:
        self.client = client
        self.assigned: set[str] = set()
        self.to_ack: list[str] = []
        self.failures = 0
        self.alive = True


class Coordinator:
    """Run sweeps across a fixed set of worker addresses."""

    def __init__(
        self,
        workers: Sequence[str],
        *,
        replicate: int = 2,
        poll_interval: float = 0.02,
        timeout: float = 30.0,
        max_failures: int = 2,
        pull_chunk: int = 200,
    ) -> None:
        addresses = [str(w) for w in workers if str(w).strip()]
        if not addresses:
            raise ValueError("the distributed backend needs at least one worker")
        for address in addresses:
            _parse_address(address)  # fail fast on malformed addresses
        self.addresses = addresses
        self.replicate = max(1, int(replicate))
        self.poll_interval = max(0.0, float(poll_interval))
        self.timeout = float(timeout)
        self.max_failures = max(1, int(max_failures))
        self.pull_chunk = max(1, int(pull_chunk))
        self.stats = CoordinatorStats()

    # ------------------------------------------------------------------ #
    # Dispatch helpers
    # ------------------------------------------------------------------ #
    def _push(
        self,
        slot: _WorkerSlot,
        digests: Sequence[str],
        encoded: dict[str, dict[str, Any]],
        sweep: str,
    ) -> bool:
        """Send ``digests`` to one worker in bounded chunks; False if it died."""
        for start in range(0, len(digests), self.pull_chunk):
            chunk = list(digests[start : start + self.pull_chunk])
            try:
                slot.client.call(
                    "/pull",
                    {"sweep": sweep, "points": [encoded[d] for d in chunk]},
                )
            except WorkerUnavailableError:
                slot.alive = False
                return False
            slot.assigned.update(chunk)
            self.stats.dispatched += len(chunk)
        return True

    def _requeue(
        self,
        lost: _WorkerSlot,
        live: list[_WorkerSlot],
        completed: dict[str, list[Any]],
        encoded: dict[str, dict[str, Any]],
        sweep: str,
    ) -> None:
        """Move a dead worker's outstanding points onto the live ones."""
        orphans = [d for d in lost.assigned if d not in completed]
        lost.assigned.clear()
        for digest in orphans:
            holders = [s for s in live if digest in s.assigned]
            if holders:
                continue  # a replica is still in flight elsewhere
            target = min(live, key=lambda s: len(s.assigned - set(completed)))
            if self._push(target, [digest], encoded, sweep):
                self.stats.requeued += 1

    def _replicate_stragglers(
        self,
        live: list[_WorkerSlot],
        pending: list[str],
        dispatch_order: dict[str, int],
        encoded: dict[str, dict[str, Any]],
        sweep: str,
    ) -> None:
        """Copy the longest-outstanding pending points onto idle workers."""
        if len(live) < 2:
            return
        pending_set = set(pending)
        idle = [slot for slot in live if not (slot.assigned & pending_set)]
        if not idle:
            return
        # Oldest dispatch first: those have been in flight the longest.
        candidates = sorted(pending, key=lambda d: dispatch_order.get(d, 0))
        for slot in idle:
            copies = [
                d
                for d in candidates
                if d not in slot.assigned
                and sum(1 for s in live if d in s.assigned) < self.replicate
            ][: self.pull_chunk]
            if not copies:
                break
            if self._push(slot, copies, encoded, sweep):
                self.stats.replicated += len(copies)

    # ------------------------------------------------------------------ #
    # The sweep
    # ------------------------------------------------------------------ #
    def run(self, points: Sequence[SweepPoint]) -> list[PointResult]:
        """Execute ``points`` across the workers; results in input order."""
        points = list(points)
        digests = [point_key(point) for point in points]
        encoded: dict[str, dict[str, Any]] = {}
        signature: dict[str, str] = {}
        experiment: dict[str, str] = {}
        order: list[str] = []
        for point, digest in zip(points, digests):
            if digest not in encoded:
                encoded[digest] = encode_point(point)
                signature[digest] = point_signature(point)
                experiment[digest] = point.experiment
                order.append(digest)
        self.stats.points = len(points)
        self.stats.distinct_points = len(order)

        sweep = secrets.token_hex(8)
        slots: list[_WorkerSlot] = []
        for address in self.addresses:
            slot = _WorkerSlot(WorkerClient(address, timeout=self.timeout))
            try:
                slot.client.call("/register", {"sweep": sweep})
            except WorkerUnavailableError:
                slot.alive = False
            slots.append(slot)
        live = [slot for slot in slots if slot.alive]
        if not live:
            raise DistributedError(
                f"no worker among {self.addresses} answered /register; "
                "start them with `repro worker`"
            )
        self.stats.workers = len(live)

        try:
            return self._drive(order, points, digests, encoded, signature, experiment, live, sweep)
        finally:
            for slot in slots:
                slot.client.close()

    def _drive(
        self,
        order: list[str],
        points: list[SweepPoint],
        digests: list[str],
        encoded: dict[str, dict[str, Any]],
        signature: dict[str, str],
        experiment: dict[str, str],
        live: list[_WorkerSlot],
        sweep: str,
    ) -> list[PointResult]:
        # Initial sharding: contiguous balanced blocks across live workers.
        assignment = balanced_partition(len(order), len(live))
        dispatch_order: dict[str, int] = {}
        for index, (digest, machine) in enumerate(zip(order, assignment)):
            dispatch_order[digest] = index
        for machine, slot in enumerate(live):
            shard = [d for d, m in zip(order, assignment) if m == machine]
            self._push(slot, shard, encoded, sweep)
        completed: dict[str, list[Any]] = {}

        while len(completed) < len(order):
            progressed = False
            for slot in list(live):
                if not slot.alive:
                    continue
                try:
                    response = slot.client.call(
                        "/result", {"sweep": sweep, "acked": slot.to_ack}
                    )
                    slot.to_ack = []
                    slot.failures = 0
                except WorkerUnavailableError:
                    slot.failures += 1
                    if slot.failures < self.max_failures:
                        continue
                    slot.alive = False
                    self.stats.workers_lost.append(slot.client.address)
                    live = [s for s in live if s.alive]
                    if not live:
                        raise DistributedError(
                            "every worker died with "
                            f"{len(order) - len(completed)} points outstanding"
                        )
                    self._requeue(slot, live, completed, encoded, sweep)
                    continue
                self.stats.polls += 1
                for entry in response.get("completed", []):
                    digest = str(entry.get("digest", ""))
                    if digest not in encoded:
                        continue  # stale or foreign entry: ignore, don't ack
                    slot.to_ack.append(digest)
                    if digest in completed:
                        continue  # a replica already answered
                    if "error" in entry:
                        raise RemoteExecutionError(
                            f"point {experiment[digest]!r} failed on worker "
                            f"{slot.client.address}: {entry['error']}",
                            digest=digest,
                            worker=slot.client.address,
                        )
                    if entry.get("signature") != signature[digest]:
                        raise WorkerProtocolError(
                            f"worker {slot.client.address} returned a result "
                            f"whose signature does not match point "
                            f"{experiment[digest]!r}"
                        )
                    completed[digest] = decode_records(entry.get("records", []))
                    progressed = True

            pending = [d for d in order if d not in completed]
            if pending and live:
                self._replicate_stragglers(
                    live, pending, dispatch_order, encoded, sweep
                )
            if not progressed and pending:
                time.sleep(self.poll_interval)

        return [
            PointResult(
                experiment=point.experiment,
                signature=signature[digest],
                records=list(completed[digest]),
            )
            for point, digest in zip(points, digests)
        ]
