"""Wire format for shipping sweep points and results between hosts.

A :class:`~repro.backends.SweepPoint` crosses the network as a JSON object::

    {"experiment": "fig1-mis",
     "fn": "repro.experiments.figure1.mis_experiment",   # module-level path
     "kwargs": {"n": 60, "c": 0.4},
     "seed": 7,            # or a list for tuple seeds
     "trials": 1}

The function travels *by reference* (its import path), exactly like the
``mp`` backend's pickling — which is why sweep functions must be
module-level.  The receiving worker re-imports the function and recomputes
the point's :func:`~repro.backends.base.point_digest` itself, so a
malformed or tampered payload can never be credited against the wrong
idempotency key.

Encoding is *checked*: :func:`encode_point` round-trips the payload
through JSON and verifies the decoded point has the same canonical
signature as the original, so a point that cannot survive transport
(non-JSON-able kwargs, a lambda, a closure) fails loudly at dispatch time
on the coordinator — never silently on a worker.

Results travel as the same canonical record payloads the
:class:`~repro.backends.ResultCache` stores
(:func:`~repro.backends.cache.record_to_payload`), which round-trip
float64 exactly; that shared serialization is what makes a distributed
sweep byte-identical to a serial one.
"""

from __future__ import annotations

import importlib
import json
import math
from typing import Any, Sequence

from ..backends.base import SweepPoint, point_digest, point_signature
from ..backends.cache import record_from_payload, record_to_payload

__all__ = [
    "DistributedError",
    "RemoteExecutionError",
    "WorkerProtocolError",
    "WorkerUnavailableError",
    "callable_path",
    "decode_point",
    "decode_records",
    "encode_point",
    "encode_records",
    "payload_words",
    "point_key",
    "resolve_callable",
]


class DistributedError(RuntimeError):
    """Base class for coordinator/worker failures."""


class WorkerUnavailableError(DistributedError):
    """A worker stopped answering HTTP calls (crash, kill, network)."""


class WorkerProtocolError(DistributedError):
    """A worker answered, but not with a valid protocol payload."""


class RemoteExecutionError(DistributedError):
    """A point raised on the worker that executed it."""

    def __init__(self, message: str, *, digest: str = "", worker: str = "") -> None:
        super().__init__(message)
        self.digest = digest
        self.worker = worker


# --------------------------------------------------------------------------- #
# Callables by reference
# --------------------------------------------------------------------------- #
def callable_path(fn: Any) -> str:
    """The importable ``module.qualname`` path of a module-level callable.

    Raises :class:`WorkerProtocolError` for lambdas, closures, bound
    methods, and anything else that cannot be re-imported on another host.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise WorkerProtocolError(f"{fn!r} has no importable module path")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise WorkerProtocolError(
            f"{module}.{qualname} is not module-level; distributed execution "
            "ships functions by import path"
        )
    return f"{module}.{qualname}"


def resolve_callable(path: str) -> Any:
    """Import the callable named by ``path`` (``module.qualname``)."""
    module_name, _, qualname = path.rpartition(".")
    while module_name:
        try:
            module = importlib.import_module(module_name)
            break
        except ImportError:
            # The split point may sit inside a class qualname
            # (``pkg.mod.Class.method``): walk left until a module imports.
            module_name, _, head = module_name.rpartition(".")
            qualname = f"{head}.{qualname}"
    else:
        raise WorkerProtocolError(f"cannot import any module for {path!r}")
    target: Any = module
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise WorkerProtocolError(
                f"{path!r} does not resolve: {module.__name__} has no {part!r}"
            ) from None
    if not callable(target):
        raise WorkerProtocolError(f"{path!r} resolved to a non-callable")
    return target


# --------------------------------------------------------------------------- #
# Points
# --------------------------------------------------------------------------- #
def _decode_seed(raw: Any) -> int | tuple[int, ...]:
    if isinstance(raw, list):
        return tuple(int(v) for v in raw)
    return int(raw)


def decode_point(payload: dict[str, Any]) -> SweepPoint:
    """Rebuild a :class:`SweepPoint` from :func:`encode_point` output."""
    try:
        return SweepPoint(
            experiment=str(payload["experiment"]),
            fn=resolve_callable(str(payload["fn"])),
            kwargs=dict(payload.get("kwargs") or {}),
            seed=_decode_seed(payload.get("seed", 0)),
            trials=int(payload.get("trials", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkerProtocolError(f"malformed point payload: {exc}") from exc


def encode_point(point: SweepPoint) -> dict[str, Any]:
    """Encode a point for transport, verifying it survives the trip.

    The returned payload has already been round-tripped through JSON and
    re-decoded; if the re-decoded point's canonical signature differs from
    the original's, the point is not transportable and a
    :class:`WorkerProtocolError` names it.  (Tuples inside ``kwargs``
    arrive as lists — the canonical signature treats the two identically,
    so JSON-shaped kwargs, like everything built from a solve request, are
    always safe.)
    """
    raw = {
        "experiment": point.experiment,
        "fn": callable_path(point.fn),
        "kwargs": dict(point.kwargs),
        "seed": list(point.seed) if isinstance(point.seed, tuple) else int(point.seed),
        "trials": int(point.trials),
    }
    try:
        # A validation round-trip, not a wire rendering: the result is
        # immediately parsed back, so key order never reaches any bytes.
        payload = json.loads(json.dumps(raw, allow_nan=False))  # repro-lint: disable=DET002
    except (TypeError, ValueError) as exc:
        raise WorkerProtocolError(
            f"point {point.experiment!r} has kwargs that cannot cross the "
            f"wire as JSON: {exc}"
        ) from exc
    decoded = decode_point(payload)
    if point_signature(decoded) != point_signature(point):
        raise WorkerProtocolError(
            f"point {point.experiment!r} does not survive JSON transport; "
            "distributed sweeps need JSON-shaped kwargs and module-level fns"
        )
    return payload


def point_key(point: SweepPoint) -> str:
    """The idempotency key of a point: its ResultCache content digest."""
    return point_digest(point)


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
def encode_records(records: Sequence[Any]) -> list[dict[str, Any]]:
    """Records → canonical JSON payloads (the ResultCache serialization)."""
    return [record_to_payload(record) for record in records]


def decode_records(payloads: Sequence[dict[str, Any]]) -> list[Any]:
    """Canonical JSON payloads → :class:`ExperimentRecord` objects."""
    try:
        return [record_from_payload(payload) for payload in payloads]
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkerProtocolError(f"malformed result payload: {exc}") from exc


def payload_words(value: Any) -> int:
    """Size of a JSON-able value in 8-byte machine words (at least 1).

    The distributed layer's *measured* counterpart of the simulator's
    :func:`~repro.mapreduce.machine.words_of` model accounting: the actual
    canonical-JSON byte length of what crossed the wire, rounded up to
    words, so MPC load checks run against real payload sizes.
    """
    encoded = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return max(1, math.ceil(len(encoded.encode("utf-8")) / 8))
