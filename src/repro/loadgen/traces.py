"""Request traces: deterministic arrival schedules for the load harness.

Every generator takes an integer ``seed`` and produces exactly the same
trace for the same arguments — the request schedule is part of the
experiment's identity, so a load-test result can name the trace that
produced it and anyone can re-fire the identical workload.  Determinism
is tested down to the serialized bytes in
``tests/property/test_property_loadgen.py``.

Arrival processes
-----------------
``poisson_trace``
    Homogeneous Poisson arrivals at ``rate`` req/s: i.i.d. exponential
    gaps.  The steady-state reference.
``onoff_trace``
    Bursty on/off (Markov-modulated-style) arrivals: alternating ON
    windows at ``on_rate`` and OFF windows at ``off_rate`` (default 0) of
    fixed lengths.  The reference "bursty" trace the adaptive batcher is
    gated against: long quiet valleys punish a fixed wait window, dense
    bursts punish a missing one.
``ramp_trace``
    Piecewise-Poisson ramp from ``start_rate`` to ``end_rate``: finds the
    saturation knee by walking the offered load through it.

Request bodies cycle deterministically through a body list (index ``i %
len(bodies)``), which reproduces the hot-query-heavy mix a public
endpoint sees when the list contains duplicates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "ReplayConfig",
    "RequestTrace",
    "TraceRequest",
    "default_bodies",
    "load_trace",
    "onoff_trace",
    "poisson_trace",
    "ramp_trace",
    "save_trace",
]


@dataclass(frozen=True)
class TraceRequest:
    """One scheduled request: fire ``body`` at ``at`` seconds after start."""

    at: float
    body: Mapping[str, Any]


@dataclass
class RequestTrace:
    """An ordered request schedule plus the metadata that identifies it."""

    requests: list[TraceRequest]
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        """Nominal trace length: the configured duration, else the last arrival."""
        configured = self.meta.get("duration")
        if configured is not None:
            return float(configured)
        return self.requests[-1].at if self.requests else 0.0

    @property
    def mean_rate(self) -> float:
        """Offered request rate over the nominal duration (req/s)."""
        return len(self.requests) / self.duration if self.duration else 0.0

    def scaled(self, rate_scale: float) -> "RequestTrace":
        """Replay ``rate_scale``x faster (>1) or slower (<1): offsets divide."""
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        if rate_scale == 1.0:
            return self
        meta = dict(self.meta)
        if meta.get("duration") is not None:
            meta["duration"] = float(meta["duration"]) / rate_scale
        meta["rate_scale"] = rate_scale * float(self.meta.get("rate_scale", 1.0))
        return RequestTrace(
            requests=[
                TraceRequest(at=request.at / rate_scale, body=request.body)
                for request in self.requests
            ],
            meta=meta,
        )

    def truncated(self, max_requests: int | None) -> "RequestTrace":
        """At most ``max_requests`` arrivals (None = all)."""
        if max_requests is None or len(self.requests) <= max_requests:
            return self
        kept = self.requests[: max(0, int(max_requests))]
        meta = dict(self.meta) | {"truncated_to": len(kept)}
        return RequestTrace(requests=kept, meta=meta)


@dataclass(frozen=True)
class ReplayConfig:
    """How a trace is replayed (the knobs, not the schedule).

    ``rate_scale`` rescales the schedule (2.0 = twice as fast);
    ``max_requests`` truncates it; ``connections`` sizes the keep-alive
    connection pool; ``timeout`` bounds one HTTP exchange; ``verify``
    checks every 200 body byte-for-byte against the direct library call
    (expensive: one in-process solve per *distinct* request body);
    ``pipeline`` > 1 enables HTTP/1.1 pipelining — each connection keeps
    up to that many requests in flight before reading responses (off by
    default: 1 request at a time per connection, as before).
    """

    rate_scale: float = 1.0
    max_requests: int | None = None
    connections: int = 16
    timeout: float = 120.0
    verify: bool = False
    deadline_ms: float | None = None
    pipeline: int = 1

    def prepare(self, trace: RequestTrace) -> RequestTrace:
        return trace.scaled(self.rate_scale).truncated(self.max_requests)


# --------------------------------------------------------------------------- #
# Body mixes
# --------------------------------------------------------------------------- #
def default_bodies(
    *,
    algorithm: str = "mis",
    n: int = 60,
    distinct: int = 8,
    scenario: str | None = None,
) -> list[dict[str, Any]]:
    """A hot-query-heavy body mix: ``distinct`` seeds of one workload."""
    bodies: list[dict[str, Any]] = []
    for seed in range(max(1, distinct)):
        body: dict[str, Any] = {"algorithm": algorithm, "seed": seed}
        if scenario:
            body["scenario"] = scenario
        else:
            body["params"] = {"n": int(n), "c": 0.4}
        bodies.append(body)
    return bodies


def _assemble(
    offsets: Iterable[float],
    bodies: Sequence[Mapping[str, Any]],
    meta: dict[str, Any],
) -> RequestTrace:
    if not bodies:
        raise ValueError("need at least one request body")
    requests = [
        TraceRequest(at=float(at), body=dict(bodies[index % len(bodies)]))
        for index, at in enumerate(offsets)
    ]
    meta["requests"] = len(requests)
    return RequestTrace(requests=requests, meta=meta)


# --------------------------------------------------------------------------- #
# Synthetic arrival processes
# --------------------------------------------------------------------------- #
def poisson_trace(
    *,
    rate: float,
    duration: float,
    bodies: Sequence[Mapping[str, Any]],
    seed: int = 0,
) -> RequestTrace:
    """Homogeneous Poisson arrivals at ``rate`` req/s for ``duration`` s."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    offsets: list[float] = []
    at = 0.0
    while True:
        at += float(rng.exponential(1.0 / rate))
        if at >= duration:
            break
        offsets.append(at)
    return _assemble(
        offsets,
        bodies,
        {"process": "poisson", "rate": rate, "duration": duration, "seed": seed},
    )


def onoff_trace(
    *,
    on_rate: float,
    duration: float,
    bodies: Sequence[Mapping[str, Any]],
    on_seconds: float = 1.0,
    off_seconds: float = 1.0,
    off_rate: float = 0.0,
    seed: int = 0,
) -> RequestTrace:
    """Bursty on/off arrivals: ON windows at ``on_rate``, OFF at ``off_rate``.

    Mean offered rate is ``(on_rate * on + off_rate * off) / (on + off)``.
    """
    if on_rate <= 0 or duration <= 0:
        raise ValueError("on_rate and duration must be positive")
    if on_seconds <= 0 or off_seconds < 0 or off_rate < 0:
        raise ValueError("window lengths must be positive, off_rate non-negative")
    rng = np.random.default_rng(seed)
    offsets: list[float] = []
    window_start, on = 0.0, True
    while window_start < duration:
        window = on_seconds if on else off_seconds
        rate = on_rate if on else off_rate
        if window > 0 and rate > 0:
            at = window_start
            while True:
                at += float(rng.exponential(1.0 / rate))
                if at >= min(window_start + window, duration):
                    break
                offsets.append(at)
        window_start += window
        on = not on
    return _assemble(
        offsets,
        bodies,
        {
            "process": "onoff",
            "on_rate": on_rate,
            "off_rate": off_rate,
            "on_seconds": on_seconds,
            "off_seconds": off_seconds,
            "duration": duration,
            "seed": seed,
        },
    )


def ramp_trace(
    *,
    start_rate: float,
    end_rate: float,
    duration: float,
    bodies: Sequence[Mapping[str, Any]],
    steps: int = 10,
    seed: int = 0,
) -> RequestTrace:
    """Piecewise-Poisson ramp from ``start_rate`` to ``end_rate`` req/s."""
    if start_rate < 0 or end_rate < 0 or max(start_rate, end_rate) == 0:
        raise ValueError("rates must be non-negative and not both zero")
    if duration <= 0 or steps < 1:
        raise ValueError("duration must be positive and steps >= 1")
    rng = np.random.default_rng(seed)
    offsets: list[float] = []
    step = duration / steps
    for index in range(steps):
        # Rate of the step's midpoint on the linear ramp.
        fraction = (index + 0.5) / steps
        rate = start_rate + (end_rate - start_rate) * fraction
        if rate <= 0:
            continue
        at = index * step
        while True:
            at += float(rng.exponential(1.0 / rate))
            if at >= (index + 1) * step:
                break
            offsets.append(at)
    return _assemble(
        offsets,
        bodies,
        {
            "process": "ramp",
            "start_rate": start_rate,
            "end_rate": end_rate,
            "steps": steps,
            "duration": duration,
            "seed": seed,
        },
    )


# --------------------------------------------------------------------------- #
# Recorded traces (JSONL)
# --------------------------------------------------------------------------- #
def save_trace(trace: RequestTrace, path: str | Path) -> None:
    """Write a trace as JSONL: one meta line, then one line per request.

    The encoding is canonical (sorted keys, fixed separators, ``repr``
    floats), so identical traces serialize to identical bytes.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"meta": trace.meta}, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        for request in trace.requests:
            line = json.dumps(
                {"at": request.at, "body": request.body},
                sort_keys=True,
                separators=(",", ":"),
            )
            handle.write(line + "\n")


def load_trace(path: str | Path) -> RequestTrace:
    """Read a JSONL trace written by :func:`save_trace` (meta line optional)."""
    requests: list[TraceRequest] = []
    meta: dict[str, Any] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from exc
            if "meta" in record and "at" not in record:
                meta = dict(record["meta"])
                continue
            if "at" not in record or "body" not in record:
                raise ValueError(f"{path}:{number}: needs 'at' and 'body' fields")
            requests.append(TraceRequest(at=float(record["at"]), body=record["body"]))
    requests.sort(key=lambda request: request.at)
    meta.setdefault("process", "recorded")
    meta["requests"] = len(requests)
    return RequestTrace(requests=requests, meta=meta)
