"""The load-test result: SLO percentiles, throughput, shed/error counts.

One :class:`SampleReport` is the complete, JSON-ready outcome of one trace
replay — what the CLI prints, what ``BENCH_service.json`` accumulates, and
what the CI load-smoke job gates on.  Latency percentiles come from a
:class:`~repro.service.histogram.LatencyHistogram` (bounded relative
error), so a million-request replay costs constant memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..service.histogram import LatencyHistogram

__all__ = ["SampleReport"]


@dataclass
class SampleReport:
    """Everything one replay measured.

    ``sent`` counts requests that reached the wire; ``transport_errors``
    counts requests that never got an HTTP status back (connect/reset
    failures).  Statuses are exclusive buckets: ``ok`` (2xx), ``rejected``
    (429 — backpressure, *not* an error), ``timeouts`` (504), ``client_errors``
    (other 4xx), ``server_errors`` (5xx except 504).
    """

    trace: dict[str, Any] = field(default_factory=dict)
    sent: int = 0
    ok: int = 0
    rejected: int = 0
    timeouts: int = 0
    client_errors: int = 0
    server_errors: int = 0
    transport_errors: int = 0
    golden_mismatches: int | None = None
    duration_seconds: float = 0.0
    offered_rate: float = 0.0
    status_counts: dict[int, int] = field(default_factory=dict)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Max lateness (seconds) between a request's scheduled offset and when
    #: the client actually fired it — the replay fidelity check.
    max_schedule_lag: float = 0.0
    #: Server-side /metrics deltas over the replay (batch occupancy etc.).
    server: dict[str, Any] | None = None

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, status: int, latency_seconds: float) -> None:
        self.sent += 1
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        self.latency.record(max(0.0, latency_seconds))
        if 200 <= status < 300:
            self.ok += 1
        elif status == 429:
            self.rejected += 1
        elif status == 504:
            self.timeouts += 1
        elif 400 <= status < 500:
            self.client_errors += 1
        else:
            self.server_errors += 1

    def record_transport_error(self) -> None:
        self.sent += 1
        self.transport_errors += 1

    # ------------------------------------------------------------------ #
    # Derived
    # ------------------------------------------------------------------ #
    @property
    def throughput(self) -> float:
        """Successful (2xx) responses per second over the replay."""
        return self.ok / self.duration_seconds if self.duration_seconds else 0.0

    def percentile_ms(self, q: float) -> float:
        return self.latency.percentile(q) * 1000.0

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready report (the ``BENCH_service.json`` record shape)."""
        latency = self.latency.snapshot()
        return {
            "trace": self.trace,
            "sent": self.sent,
            "ok": self.ok,
            "rejected_429": self.rejected,
            "deadline_timeouts_504": self.timeouts,
            "client_errors_4xx": self.client_errors,
            "server_errors_5xx": self.server_errors,
            "transport_errors": self.transport_errors,
            "golden_mismatches": self.golden_mismatches,
            "duration_seconds": self.duration_seconds,
            "offered_rate_rps": self.offered_rate,
            "throughput_rps": self.throughput,
            "max_schedule_lag_seconds": self.max_schedule_lag,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "latency_ms": {
                key: (value * 1000.0 if key != "count" else value)
                for key, value in latency.items()
            },
            "server": self.server,
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (the CLI's default output)."""
        lines = [
            f"trace: {self.trace.get('process', '?')} "
            f"({self.sent} requests over {self.duration_seconds:.2f}s, "
            f"offered {self.offered_rate:.1f} req/s)",
            f"  completed: {self.ok} ok, {self.rejected} shed (429), "
            f"{self.timeouts} deadline (504), {self.client_errors} 4xx, "
            f"{self.server_errors} 5xx, {self.transport_errors} transport errors",
            f"  throughput: {self.throughput:.1f} req/s"
            + (
                f"; golden mismatches: {self.golden_mismatches}"
                if self.golden_mismatches is not None
                else ""
            ),
            "  latency: "
            + "  ".join(
                f"{name}={self.percentile_ms(q):.1f}ms"
                for name, q in (("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("p999", 99.9))
            )
            + f"  max={self.latency.max * 1000.0:.1f}ms",
            f"  schedule lag (client-side): max {self.max_schedule_lag * 1000.0:.1f}ms",
        ]
        if self.server:
            occupancy = self.server.get("batch_size_mean")
            if occupancy is not None:
                lines.append(
                    f"  server: batch occupancy mean {occupancy:.2f} "
                    f"(max {self.server.get('batch_size_max', 0)}), "
                    f"{self.server.get('batches_total', 0)} batches, "
                    f"{self.server.get('rejected_total', 0)} shed server-side"
                )
        return "\n".join(lines)
