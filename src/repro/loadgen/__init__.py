"""Trace-driven load generation for the solver service (``repro loadtest``).

A *trace* is a deterministic request schedule: a list of (arrival offset,
solve-request body) pairs.  Traces come from three synthetic arrival
processes — Poisson (steady), on/off (bursty), ramp (rising rate) — or
from a recorded JSONL file, all seeded and byte-identical across replays
of the same seed.  A :class:`~repro.loadgen.traces.ReplayConfig` rescales
a trace's rate (Cydonia's ``replayRate`` idiom: scale 2.0 replays twice
as fast) without regenerating it.

The :class:`~repro.loadgen.runner.Runner` replays a trace against a live
``repro serve`` endpoint over persistent keep-alive connections, firing
each request at its scheduled offset (open-loop, so a slow server faces
the schedule, not a politely waiting client), and folds every outcome
into a :class:`~repro.loadgen.report.SampleReport`: p50/p99/p999 latency
(via the same :class:`~repro.service.histogram.LatencyHistogram` the
server's ``/metrics`` uses), throughput, status/error/429 counts, and the
server-side batch-occupancy delta.

See ``docs/SERVICE.md`` for the ``repro loadtest`` walkthrough.
"""

from .report import SampleReport
from .runner import Runner, run_replay
from .traces import (
    ReplayConfig,
    RequestTrace,
    TraceRequest,
    default_bodies,
    load_trace,
    onoff_trace,
    poisson_trace,
    ramp_trace,
    save_trace,
)

__all__ = [
    "ReplayConfig",
    "RequestTrace",
    "Runner",
    "SampleReport",
    "TraceRequest",
    "default_bodies",
    "load_trace",
    "onoff_trace",
    "poisson_trace",
    "ramp_trace",
    "run_replay",
    "save_trace",
]
