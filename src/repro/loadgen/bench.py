"""``BENCH_service.json``: the service's perf trajectory, and its gates.

Kernel benchmarking keeps a single snapshot (``BENCH_kernels.json``); the
serving SLO needs a *trajectory* — p99 is only meaningful against where it
was last PR.  The file holds::

    {"schema_version": 1,
     "history": [ {..SampleReport.to_dict().., "label": "...", "recorded": N}, ... ]}

Each load-test run appends one record; CI uploads the file as an artifact
and :func:`gate` fails the build when the newest record breaches an
absolute p99 bound, reports any 5xx, or regresses p99 against the previous
comparable record (same label) by more than the allowed fraction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from .report import SampleReport

__all__ = ["append_history", "gate", "load_history"]

_SCHEMA = 1


def load_history(path: str | Path) -> dict[str, Any]:
    """Read a trajectory file; a missing file is an empty history."""
    path = Path(path)
    if not path.exists():
        return {"schema_version": _SCHEMA, "history": []}
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "history" not in payload:
        raise ValueError(f"{path} is not a BENCH_service trajectory file")
    return payload


def append_history(
    path: str | Path, report: SampleReport, *, label: str = "default"
) -> dict[str, Any]:
    """Append one report to the trajectory and rewrite the file atomically."""
    payload = load_history(path)
    record = report.to_dict()
    record["label"] = label
    record["recorded"] = len(payload["history"])
    payload["history"].append(record)
    payload["schema_version"] = _SCHEMA
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return record


def gate(
    report: SampleReport,
    *,
    max_p99_ms: float | None = None,
    fail_on_5xx: bool = False,
    history: dict[str, Any] | None = None,
    label: str = "default",
    max_regression: float | None = None,
) -> list[str]:
    """Check a report against the SLO gates; returns failure messages."""
    failures: list[str] = []
    p99 = report.percentile_ms(99.0)
    if max_p99_ms is not None and p99 > max_p99_ms:
        failures.append(f"p99 {p99:.1f} ms exceeds the {max_p99_ms:.1f} ms bound")
    if fail_on_5xx and (report.server_errors or report.transport_errors):
        failures.append(
            f"{report.server_errors} server 5xx and "
            f"{report.transport_errors} transport errors (0 allowed)"
        )
    if report.golden_mismatches:
        failures.append(
            f"{report.golden_mismatches} responses differ from direct library calls"
        )
    if max_regression is not None and history is not None:
        previous = [
            record
            for record in history.get("history", [])
            if record.get("label") == label
        ]
        if previous:
            baseline = previous[-1]["latency_ms"]["p99"]
            if baseline > 0 and p99 > baseline * (1.0 + max_regression):
                failures.append(
                    f"p99 regressed {p99 / baseline:.2f}x vs previous "
                    f"{baseline:.1f} ms (allowed {1.0 + max_regression:.2f}x)"
                )
    return failures
