"""Replay a request trace against a live service and measure the tail.

The :class:`Runner` is an open-loop load generator: every request fires at
its scheduled trace offset (as close as the client can manage — the
achieved fidelity is reported as ``max_schedule_lag``), whether or not
earlier responses have arrived.  That is the property that makes a load
test honest: a server falling behind faces the configured arrival rate,
not a politely waiting client.  Closed-loop generators hide saturation —
the effect Cydonia's replay-rate experiments and the serving literature
call coordinated omission.

Mechanics: ``connections`` worker threads each own one persistent
keep-alive :class:`http.client.HTTPConnection` and pull requests, in
arrival order, from a shared queue; each worker sleeps until its request's
offset, fires, and records ``(status, latency)`` into thread-local
accumulators that are merged into one :class:`~repro.loadgen.report.
SampleReport` at the end.  A broken keep-alive connection is re-opened
once per request before counting a transport error (the server is allowed
to drop idle/slow connections; see ``read_timeout``).

With ``config.pipeline`` > 1 each worker instead speaks *pipelined*
HTTP/1.1 over a raw socket: up to ``pipeline`` requests are written
back-to-back before their responses are read (in order — the server
answers a keep-alive connection strictly sequentially), so one
connection can keep several requests in flight.  Off by default; the
responses a pipelined replay receives are byte-identical to the
one-at-a-time path, which ``tests/loadgen/test_pipeline.py`` asserts.

With ``config.verify`` the runner pre-computes the direct-library golden
bytes for every *distinct* request body (via
:func:`repro.service.api.solve_direct`) and counts served 200 bodies that
differ — the service's byte-identity guarantee, checked under load.
"""

from __future__ import annotations

import http.client
import json
import queue
import socket
import threading
import time
import urllib.parse
from collections import deque
from typing import Any

from .report import SampleReport
from .traces import ReplayConfig, RequestTrace

__all__ = ["Runner", "run_replay"]

_HEADERS = {"Content-Type": "application/json"}


def _canonical(body: Any) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


class _PipelinedConnection:
    """A raw socket speaking pipelined HTTP/1.1 (many requests in flight).

    :class:`http.client.HTTPConnection` enforces one outstanding request
    per connection, so pipelining needs its own minimal client: write
    ``POST /solve`` requests back-to-back, read ``Content-Length``-framed
    responses in order.  That framing is exactly what the repro service
    speaks (it never chunks), so the parser here stays deliberately small.
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")
        self._host_header = f"{host}:{port}"

    def send(self, payload: bytes, headers: dict[str, str] | None = None) -> None:
        lines = [
            "POST /solve HTTP/1.1",
            f"Host: {self._host_header}",
            f"Content-Length: {len(payload)}",
            "Connection: keep-alive",
        ]
        lines += [f"{name}: {value}" for name, value in (headers or {}).items()]
        self.sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload)

    def read_response(self) -> tuple[int, bytes]:
        line = self.rfile.readline()
        if not line:
            raise http.client.HTTPException("connection closed mid-pipeline")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise http.client.HTTPException(f"malformed status line {line!r}")
        status = int(parts[1])
        length = 0
        while True:
            header = self.rfile.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = self.rfile.read(length) if length else b""
        if len(body) != length:
            raise http.client.HTTPException("truncated response body")
        return status, body

    def close(self) -> None:
        for closer in (self.rfile.close, self.sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - close is best-effort
                pass


class _Worker:
    """One replay thread: a persistent connection plus local accumulators."""

    def __init__(self, runner: "Runner") -> None:
        self.runner = runner
        self.conn: http.client.HTTPConnection | None = None
        self.statuses: list[tuple[int, float]] = []
        self.transport_errors = 0
        self.mismatches = 0
        self.max_lag = 0.0

    def _connect(self) -> http.client.HTTPConnection:
        if self.conn is None:
            self.conn = http.client.HTTPConnection(
                self.runner.host, self.runner.port, timeout=self.runner.config.timeout
            )
        return self.conn

    def _exchange(self, payload: str) -> tuple[int, bytes]:
        conn = self._connect()
        try:
            conn.request("POST", "/solve", payload, self.runner._headers)
            response = conn.getresponse()
            return response.status, response.read()
        except (http.client.HTTPException, OSError):
            # The server may legitimately drop a kept-alive connection
            # (idle timeout, shed); one fresh connection gets one retry.
            self.close()
            conn = self._connect()
            conn.request("POST", "/solve", payload, self.runner._headers)
            response = conn.getresponse()
            return response.status, response.read()

    def _record(self, status: int, body: bytes, fired_at: float, key: str) -> None:
        self.statuses.append((status, time.perf_counter() - fired_at))
        goldens = self.runner._goldens
        if goldens is not None and status == 200 and body != goldens.get(key):
            self.mismatches += 1

    def run(self, started: float) -> None:
        if self.runner.config.pipeline > 1:
            self._run_pipelined(started)
            return
        while True:
            try:
                item = self.runner._work.get_nowait()
            except queue.Empty:
                break
            at, payload, key = item
            now = time.monotonic()
            due = started + at
            if now < due:
                time.sleep(due - now)
            else:
                self.max_lag = max(self.max_lag, now - due)
            fire = time.perf_counter()
            try:
                status, body = self._exchange(payload)
            except (http.client.HTTPException, OSError):
                self.transport_errors += 1
                continue
            self._record(status, body, fire, key)
        self.close()

    def _run_pipelined(self, started: float) -> None:
        """Pipelined replay: up to ``config.pipeline`` requests in flight.

        Responses on one connection arrive strictly in request order, so
        in-flight requests live in a FIFO of ``(fired_at, key)`` and each
        response is matched to the oldest.  On any transport error the
        whole pipeline's outstanding requests are counted as transport
        errors (their responses can no longer be attributed) and the
        connection is rebuilt.
        """
        depth = max(1, int(self.runner.config.pipeline))
        conn: _PipelinedConnection | None = None
        inflight: deque[tuple[float, str]] = deque()

        def read_one() -> None:
            fired_at, key = inflight[0]
            status, body = conn.read_response()
            inflight.popleft()  # only after a complete response
            self._record(status, body, fired_at, key)

        def fail_pipeline(extra: int = 0) -> None:
            nonlocal conn
            self.transport_errors += len(inflight) + extra
            inflight.clear()
            if conn is not None:
                conn.close()
                conn = None

        while True:
            try:
                item = self.runner._work.get_nowait()
            except queue.Empty:
                break
            at, payload, key = item
            now = time.monotonic()
            due = started + at
            if now < due:
                time.sleep(due - now)
            else:
                self.max_lag = max(self.max_lag, now - due)
            try:
                if conn is None:
                    conn = _PipelinedConnection(
                        self.runner.host, self.runner.port, self.runner.config.timeout
                    )
                while len(inflight) >= depth:
                    read_one()
                conn.send(payload.encode("utf-8"), self.runner._headers)
                inflight.append((time.perf_counter(), key))
            except (http.client.HTTPException, OSError):
                # This request plus everything in flight is unaccounted.
                fail_pipeline(extra=1)
        try:
            while inflight:
                read_one()
        except (http.client.HTTPException, OSError):
            fail_pipeline()
        if conn is not None:
            conn.close()

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self.conn = None


class Runner:
    """Replay traces against one ``host:port`` service endpoint."""

    def __init__(
        self, host: str, port: int, *, config: ReplayConfig | None = None
    ) -> None:
        self.host = host
        self.port = int(port)
        self.config = config or ReplayConfig()
        self._headers = dict(_HEADERS)
        if self.config.deadline_ms:
            self._headers["X-Repro-Deadline-Ms"] = str(float(self.config.deadline_ms))
        self._work: queue.Queue[tuple[float, str, str]] = queue.Queue()
        self._goldens: dict[str, bytes] | None = None

    # ------------------------------------------------------------------ #
    # Service-side observation
    # ------------------------------------------------------------------ #
    def fetch_metrics(self) -> dict[str, Any] | None:
        """Best-effort ``GET /metrics`` snapshot (None if unreachable)."""
        try:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=10)
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                if response.status != 200:
                    return None
                return json.loads(response.read())
            finally:
                conn.close()
        except (OSError, ValueError, http.client.HTTPException):
            return None

    def wait_healthy(self, timeout: float = 60.0) -> None:
        """Poll ``/healthz`` until the service answers (readiness gate)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                conn = http.client.HTTPConnection(self.host, self.port, timeout=5)
                try:
                    conn.request("GET", "/healthz")
                    if conn.getresponse().status == 200:
                        return
                finally:
                    conn.close()
            except OSError:
                time.sleep(0.05)
        raise RuntimeError(f"service at {self.host}:{self.port} never became healthy")

    @staticmethod
    def _server_delta(
        before: dict[str, Any] | None, after: dict[str, Any] | None
    ) -> dict[str, Any] | None:
        """Per-replay server-side counters: the /metrics delta over the run."""
        if not before or not after:
            return None
        batches = after["batches_total"] - before["batches_total"]
        points = after["batched_points_total"] - before["batched_points_total"]
        delta = {
            "batches_total": batches,
            "batched_points_total": points,
            "batch_size_mean": (points / batches) if batches else 0.0,
            "batch_size_max": after["batch_size_max"],
            "rejected_total": after.get("rejected_total", 0) - before.get("rejected_total", 0),
            "deadline_timeouts_total": (
                after.get("deadline_timeouts_total", 0)
                - before.get("deadline_timeouts_total", 0)
            ),
            "errors_total": after["errors_total"] - before["errors_total"],
        }
        if "batcher" in after:
            delta["batcher"] = after["batcher"]
        return delta

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def _compute_goldens(self, trace: RequestTrace) -> dict[str, bytes]:
        from ..service.api import parse_solve_request, solve_direct

        goldens: dict[str, bytes] = {}
        for request in trace.requests:
            key = _canonical(request.body)
            if key not in goldens:
                goldens[key] = solve_direct(parse_solve_request(request.body))
        return goldens

    def run(self, trace: RequestTrace) -> SampleReport:
        """Replay one trace; returns the measured :class:`SampleReport`."""
        prepared = self.config.prepare(trace)
        report = SampleReport(trace=dict(prepared.meta))
        report.offered_rate = prepared.mean_rate
        if not prepared.requests:
            return report
        # Goldens are computed *before* the clock starts so the in-process
        # solves don't steal CPU from the replay it is judging.
        self._goldens = self._compute_goldens(prepared) if self.config.verify else None
        if self._goldens is not None:
            report.golden_mismatches = 0
        for request in prepared.requests:
            # The wire body is the canonical rendering too: one encoding to
            # build, and what goes over the socket is exactly the golden key.
            canonical = _canonical(request.body)
            self._work.put((request.at, canonical, canonical))
        workers = [_Worker(self) for _ in range(max(1, self.config.connections))]
        before = self.fetch_metrics()
        started = time.monotonic()
        threads = [
            threading.Thread(target=worker.run, args=(started,), daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.duration_seconds = time.monotonic() - started
        after = self.fetch_metrics()
        for worker in workers:
            for status, elapsed in worker.statuses:
                report.record(status, elapsed)
            for _ in range(worker.transport_errors):
                report.record_transport_error()
            if self._goldens is not None:
                report.golden_mismatches = (report.golden_mismatches or 0) + worker.mismatches
            report.max_schedule_lag = max(report.max_schedule_lag, worker.max_lag)
        report.server = self._server_delta(before, after)
        return report


def run_replay(
    trace: RequestTrace,
    *,
    url: str | None = None,
    config: ReplayConfig | None = None,
    **service_kwargs: Any,
) -> SampleReport:
    """Replay ``trace`` against ``url``, or an in-process service if None.

    ``service_kwargs`` configure the in-process
    :class:`~repro.service.server.SolverService` (ignored with ``url``).
    """
    if url is not None:
        parsed = urllib.parse.urlparse(url)
        runner = Runner(
            parsed.hostname or "127.0.0.1", parsed.port or 80, config=config
        )
        runner.wait_healthy()
        return runner.run(trace)
    from ..service.server import start_in_background

    with start_in_background(**service_kwargs) as handle:
        runner = Runner("127.0.0.1", handle.port, config=config)
        runner.wait_healthy()
        return runner.run(trace)
