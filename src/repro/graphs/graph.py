"""A light-weight weighted undirected graph built on NumPy edge arrays.

The paper's graph algorithms operate on graphs with ``n`` vertices and
``m = n^{1+c}`` edges.  The representation here is an immutable edge list
(``u``, ``v``, ``w`` arrays) plus a lazily-built CSR-style adjacency index,
which keeps the heavy per-round operations (degree computation, sampling of
incident edges, induced subgraphs) vectorized as the HPC guides recommend.

Vertices are integers ``0 .. n-1``.  Self-loops are rejected; parallel edges
are rejected (the algorithms assume simple graphs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An immutable weighted undirected simple graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertices are ``0 .. n-1``.
    edges:
        Either an ``(m, 2)`` integer array of endpoints or an iterable of
        ``(u, v)`` pairs.
    weights:
        Optional edge weights (length ``m``).  Defaults to all ones
        (the unweighted case).
    validate:
        When ``True`` (default), check vertex ranges, self-loops and
        duplicate edges.
    """

    __slots__ = ("_n", "_u", "_v", "_w", "_adj_indptr", "_adj_indices", "_adj_edge_ids")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        *,
        validate: bool = True,
    ):
        n = int(num_vertices)
        if n < 0:
            raise ValueError("num_vertices must be non-negative")
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of endpoints")
        u = np.asarray(edge_array[:, 0], dtype=np.int64)
        v = np.asarray(edge_array[:, 1], dtype=np.int64)
        # Canonical orientation u < v for simple-graph checks and stable ids.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        if weights is None:
            w = np.ones(len(lo), dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (len(lo),):
                raise ValueError("weights must have one entry per edge")
        if validate:
            if len(lo) and (lo.min() < 0 or hi.max() >= n):
                raise ValueError("edge endpoint out of range")
            if np.any(lo == hi):
                raise ValueError("self-loops are not allowed")
            if len(lo):
                keys = lo * n + hi
                if len(np.unique(keys)) != len(keys):
                    raise ValueError("parallel (duplicate) edges are not allowed")
            if np.any(~np.isfinite(w)):
                raise ValueError("edge weights must be finite")
        self._n = n
        self._u = lo
        self._v = hi
        self._w = w
        self._adj_indptr: np.ndarray | None = None
        self._adj_indices: np.ndarray | None = None
        self._adj_edge_ids: np.ndarray | None = None

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        validate: bool = False,
    ) -> "Graph":
        """Build a graph directly from canonical endpoint/weight columns.

        This is the zero-copy trusted constructor used by the dataset store
        (:mod:`repro.datasets`): the caller asserts the arrays already
        satisfy the class invariants — ``edge_u[i] < edge_v[i]``, no
        duplicate edges, endpoints in range — so, unlike ``__init__``, no
        re-orientation or re-validation pass runs and (memory-mapped) input
        arrays of the right dtype are adopted as-is.  Pass ``validate=True``
        to check the invariants anyway.
        """
        n = int(num_vertices)
        u = np.asarray(edge_u, dtype=np.int64)
        v = np.asarray(edge_v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError("edge_u and edge_v must be equal-length 1-D arrays")
        if weights is None:
            w = np.ones(len(u), dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != u.shape:
                raise ValueError("weights must have one entry per edge")
        if validate:
            if n < 0:
                raise ValueError("num_vertices must be non-negative")
            if len(u) and (u.min() < 0 or v.max() >= n):
                raise ValueError("edge endpoint out of range")
            if np.any(u >= v):
                raise ValueError("edges must be canonically oriented (u < v)")
            if len(u):
                keys = u * n + v
                if len(np.unique(keys)) != len(keys):
                    raise ValueError("parallel (duplicate) edges are not allowed")
            if np.any(~np.isfinite(w)):
                raise ValueError("edge weights must be finite")
        graph = cls.__new__(cls)
        graph._n = n
        graph._u = u
        graph._v = v
        graph._w = w
        graph._adj_indptr = None
        graph._adj_indices = None
        graph._adj_edge_ids = None
        return graph

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return len(self._u)

    @property
    def edge_u(self) -> np.ndarray:
        """First endpoints (canonical ``u < v``); read-only view."""
        return self._u

    @property
    def edge_v(self) -> np.ndarray:
        """Second endpoints (canonical ``u < v``); read-only view."""
        return self._v

    @property
    def weights(self) -> np.ndarray:
        """Edge weights; read-only view."""
        return self._w

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """Return the endpoints ``(u, v)`` of edge ``edge_id``."""
        return int(self._u[edge_id]), int(self._v[edge_id])

    def edge_weight(self, edge_id: int) -> float:
        """Return the weight of edge ``edge_id``."""
        return float(self._w[edge_id])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(u, v, weight)`` triples."""
        for i in range(self.num_edges):
            yield int(self._u[i]), int(self._v[i]), float(self._w[i])

    def edge_array(self) -> np.ndarray:
        """Return a fresh ``(m, 2)`` array of edge endpoints."""
        return np.column_stack([self._u, self._v])

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #
    def _build_adjacency(self) -> None:
        if self._adj_indptr is not None:
            return
        n, m = self._n, self.num_edges
        # Every edge contributes two half-edges.
        src = np.concatenate([self._u, self._v]) if m else np.empty(0, dtype=np.int64)
        dst = np.concatenate([self._v, self._u]) if m else np.empty(0, dtype=np.int64)
        eid = np.concatenate([np.arange(m), np.arange(m)]) if m else np.empty(0, dtype=np.int64)
        order = np.argsort(src, kind="stable")
        src, dst, eid = src[order], dst[order], eid[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if m:
            counts = np.bincount(src, minlength=n)
            indptr[1:] = np.cumsum(counts)
        self._adj_indptr = indptr
        self._adj_indices = dst.astype(np.int64)
        self._adj_edge_ids = eid.astype(np.int64)

    def adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """The CSR adjacency pair: ``indices[indptr[v]:indptr[v+1]]`` are ``N(v)``.

        This is the flat view the vectorized kernels gather from; it is the
        same lazily-built index ``neighbors`` slices.
        """
        self._build_adjacency()
        assert self._adj_indptr is not None and self._adj_indices is not None
        return self._adj_indptr, self._adj_indices

    def incidence(self) -> tuple[np.ndarray, np.ndarray]:
        """The CSR incidence pair: ``edge_ids[indptr[v]:indptr[v+1]]`` are ``v``'s edges."""
        self._build_adjacency()
        assert self._adj_indptr is not None and self._adj_edge_ids is not None
        return self._adj_indptr, self._adj_edge_ids

    def degrees(self) -> np.ndarray:
        """Return the degree of every vertex as an ``(n,)`` array."""
        self._build_adjacency()
        assert self._adj_indptr is not None
        return np.diff(self._adj_indptr)

    def degree(self, vertex: int) -> int:
        """Return the degree of ``vertex``."""
        self._build_adjacency()
        assert self._adj_indptr is not None
        return int(self._adj_indptr[vertex + 1] - self._adj_indptr[vertex])

    def max_degree(self) -> int:
        """Return the maximum degree ``∆`` (0 for an empty graph)."""
        degs = self.degrees()
        return int(degs.max()) if degs.size else 0

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the neighbours of ``vertex`` as an integer array."""
        self._build_adjacency()
        assert self._adj_indptr is not None and self._adj_indices is not None
        lo, hi = self._adj_indptr[vertex], self._adj_indptr[vertex + 1]
        return self._adj_indices[lo:hi]

    def incident_edges(self, vertex: int) -> np.ndarray:
        """Return the edge ids incident to ``vertex``."""
        self._build_adjacency()
        assert self._adj_indptr is not None and self._adj_edge_ids is not None
        lo, hi = self._adj_indptr[vertex], self._adj_indptr[vertex + 1]
        return self._adj_edge_ids[lo:hi]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if ``{u, v}`` is an edge."""
        if u == v:
            return False
        return bool(np.isin(v, self.neighbors(u)).item())

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def induced_subgraph(self, vertices: Sequence[int] | np.ndarray) -> "Graph":
        """Return the subgraph induced on ``vertices``.

        The returned graph re-uses the *original* vertex identifiers, i.e. it
        has the same ``num_vertices`` but only keeps edges with both
        endpoints in ``vertices``.  This keeps vertex ids stable, which the
        colouring algorithms rely on.
        """
        mask = np.zeros(self._n, dtype=bool)
        mask[np.asarray(vertices, dtype=np.int64)] = True
        keep = mask[self._u] & mask[self._v]
        return self.subgraph_of_edges(np.flatnonzero(keep))

    def subgraph_of_edges(self, edge_ids: Sequence[int] | np.ndarray) -> "Graph":
        """Return the graph containing only the given edges (same vertex set)."""
        ids = np.asarray(edge_ids, dtype=np.int64)
        return Graph(
            self._n,
            np.column_stack([self._u[ids], self._v[ids]]),
            self._w[ids],
            validate=False,
        )

    def reweighted(self, weights: Sequence[float] | np.ndarray) -> "Graph":
        """Return a copy of the graph with new edge weights."""
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (self.num_edges,):
            raise ValueError("weights must have one entry per edge")
        return Graph(self._n, np.column_stack([self._u, self._v]), w, validate=False)

    def line_graph_degree_bound(self) -> int:
        """Upper bound on the maximum degree of the line graph (2∆ − 2)."""
        delta = self.max_degree()
        return max(0, 2 * delta - 2)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self._w.sum())

    def densification_exponent(self) -> float:
        """Return ``c`` such that ``m = n^{1+c}`` (0 for tiny graphs)."""
        if self._n <= 1 or self.num_edges <= self._n:
            return 0.0
        return float(np.log(self.num_edges) / np.log(self._n) - 1.0)

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for exact baselines)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    def word_count(self) -> int:
        """Model-level size of the graph in words (three words per edge)."""
        return 3 * self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.num_edges})"
