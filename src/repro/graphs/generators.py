"""Synthetic graph workload generators.

The paper analyses graphs with ``n`` vertices and ``m = n^{1+c}`` edges,
``0 < c``, motivated by the densification observations of Leskovec et al.
(``c`` between roughly 0.08 and 0.5 on real data).  These generators produce
workloads with a controllable densification exponent plus the weighted
variants needed by the weighted vertex cover, weighted matching and
b-matching experiments.

All generators take an explicit :class:`numpy.random.Generator` so every
experiment is reproducible from its seed.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "gnm_graph",
    "densified_graph",
    "power_law_graph",
    "random_bipartite_graph",
    "random_weights",
    "with_random_weights",
    "cycle_graph",
    "path_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "edge_count_for_exponent",
]


def _check_num_vertices(num_vertices: int, *, generator: str) -> int:
    """Validate a generator's vertex count up front (clear error, not NumPy's)."""
    n = int(num_vertices)
    if n <= 0:
        raise ValueError(
            f"{generator}: num_vertices must be a positive integer, got {num_vertices}"
        )
    return n


def _check_num_edges(num_edges: int, *, generator: str) -> int:
    """Validate a generator's edge count up front (non-negative integer)."""
    m = int(num_edges)
    if m < 0:
        raise ValueError(f"{generator}: num_edges must be non-negative, got {num_edges}")
    return m


def edge_count_for_exponent(num_vertices: int, c: float) -> int:
    """Number of edges ``m = round(n^{1+c})`` clamped to the simple-graph maximum."""
    if not 0.0 <= c <= 1.0:
        raise ValueError(
            f"densification exponent c must be in [0, 1] (m = n^(1+c) is a "
            f"simple graph), got {c}"
        )
    if num_vertices < 2:
        return 0
    max_edges = num_vertices * (num_vertices - 1) // 2
    m = int(round(num_vertices ** (1.0 + c)))
    return max(0, min(m, max_edges))


def _sample_distinct_edges(
    num_vertices: int, num_edges: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``num_edges`` distinct unordered pairs uniformly at random.

    Uses rejection sampling on 64-bit edge keys, which is fast for the
    sparse-to-moderately-dense graphs the experiments use.
    """
    n = num_vertices
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} simple edges on {n} vertices")
    if num_edges == 0:
        return np.empty((0, 2), dtype=np.int64)
    if num_edges > max_edges // 2:
        # Dense regime: enumerate all pairs and choose without replacement.
        iu, iv = np.triu_indices(n, k=1)
        chosen = rng.choice(len(iu), size=num_edges, replace=False)
        return np.column_stack([iu[chosen], iv[chosen]]).astype(np.int64)
    keys: set[int] = set()
    edges = np.empty((num_edges, 2), dtype=np.int64)
    count = 0
    while count < num_edges:
        batch = max(1024, 2 * (num_edges - count))
        u = rng.integers(0, n, size=batch)
        v = rng.integers(0, n, size=batch)
        for a, b in zip(u, v):
            if a == b:
                continue
            lo, hi = (a, b) if a < b else (b, a)
            key = int(lo) * n + int(hi)
            if key in keys:
                continue
            keys.add(key)
            edges[count, 0] = lo
            edges[count, 1] = hi
            count += 1
            if count == num_edges:
                break
    return edges


def gnm_graph(
    num_vertices: int,
    num_edges: int,
    rng: np.random.Generator,
    *,
    weights: str | None = None,
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> Graph:
    """Erdős–Rényi ``G(n, m)``: ``num_edges`` distinct edges chosen uniformly.

    ``weights`` may be ``None`` (unweighted), ``"uniform"`` or ``"exponential"``;
    see :func:`random_weights`.
    """
    num_vertices = _check_num_vertices(num_vertices, generator="gnm_graph")
    num_edges = _check_num_edges(num_edges, generator="gnm_graph")
    edges = _sample_distinct_edges(num_vertices, num_edges, rng)
    w = None
    if weights is not None:
        w = random_weights(len(edges), rng, distribution=weights, weight_range=weight_range)
    return Graph(num_vertices, edges, w, validate=False)


def densified_graph(
    num_vertices: int,
    c: float,
    rng: np.random.Generator,
    *,
    weights: str | None = None,
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> Graph:
    """A ``G(n, m)`` graph with ``m = n^{1+c}`` edges (the paper's regime).

    Raises ``ValueError`` for non-positive ``num_vertices`` or a
    densification exponent outside ``[0, 1]``.
    """
    num_vertices = _check_num_vertices(num_vertices, generator="densified_graph")
    m = edge_count_for_exponent(num_vertices, c)
    return gnm_graph(num_vertices, m, rng, weights=weights, weight_range=weight_range)


def power_law_graph(
    num_vertices: int,
    num_edges: int,
    rng: np.random.Generator,
    *,
    exponent: float = 2.5,
    weights: str | None = None,
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> Graph:
    """A Chung–Lu style graph with a power-law expected degree sequence.

    Vertices receive expected degrees proportional to ``(i + 1)^{-1/(exponent-1)}``;
    edges are sampled by picking endpoints with probability proportional to
    those expected degrees and rejecting duplicates/self-loops until
    ``num_edges`` distinct edges are found (or no progress can be made).

    Raises ``ValueError`` for non-positive ``num_vertices``, negative
    ``num_edges``, or a tail exponent ≤ 1 (the degree distribution
    ``(i+1)^{-1/(exponent-1)}`` needs ``exponent > 1``).
    """
    n = _check_num_vertices(num_vertices, generator="power_law_graph")
    num_edges = _check_num_edges(num_edges, generator="power_law_graph")
    if exponent <= 1.0:
        raise ValueError(
            f"power_law_graph: tail exponent must be > 1, got {exponent}"
        )
    if n < 2 or num_edges == 0:
        return Graph(n, np.empty((0, 2), dtype=np.int64))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    target = ranks ** (-1.0 / (exponent - 1.0))
    probs = target / target.sum()
    keys: set[int] = set()
    edges: list[tuple[int, int]] = []
    max_attempts = 50 * num_edges + 1000
    attempts = 0
    while len(edges) < num_edges and attempts < max_attempts:
        batch = max(1024, 2 * (num_edges - len(edges)))
        us = rng.choice(n, size=batch, p=probs)
        vs = rng.choice(n, size=batch, p=probs)
        attempts += batch
        for a, b in zip(us, vs):
            if a == b:
                continue
            lo, hi = (int(a), int(b)) if a < b else (int(b), int(a))
            key = lo * n + hi
            if key in keys:
                continue
            keys.add(key)
            edges.append((lo, hi))
            if len(edges) == num_edges:
                break
    edge_arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    w = None
    if weights is not None:
        w = random_weights(len(edge_arr), rng, distribution=weights, weight_range=weight_range)
    return Graph(n, edge_arr, w, validate=False)


def random_bipartite_graph(
    left: int,
    right: int,
    num_edges: int,
    rng: np.random.Generator,
    *,
    weights: str | None = None,
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> Graph:
    """A random bipartite graph with parts ``{0..left-1}`` and ``{left..left+right-1}``."""
    max_edges = left * right
    if num_edges > max_edges:
        raise ValueError("too many edges for the requested bipartite graph")
    chosen = rng.choice(max_edges, size=num_edges, replace=False)
    u = chosen // right
    v = left + (chosen % right)
    edges = np.column_stack([u, v]).astype(np.int64)
    w = None
    if weights is not None:
        w = random_weights(num_edges, rng, distribution=weights, weight_range=weight_range)
    return Graph(left + right, edges, w, validate=False)


def random_weights(
    count: int,
    rng: np.random.Generator,
    *,
    distribution: str = "uniform",
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> np.ndarray:
    """Generate positive edge/set weights.

    ``distribution`` is ``"uniform"`` (uniform on ``weight_range``),
    ``"exponential"`` (shifted exponential with mean at the range midpoint)
    or ``"integer"`` (uniform integers on the range).
    """
    lo, hi = float(weight_range[0]), float(weight_range[1])
    if lo <= 0 or hi < lo:
        raise ValueError("weight_range must be positive and increasing")
    if distribution == "uniform":
        return rng.uniform(lo, hi, size=count)
    if distribution == "exponential":
        scale = (hi - lo) / 2.0 if hi > lo else 1.0
        return lo + rng.exponential(scale if scale > 0 else 1.0, size=count)
    if distribution == "integer":
        return rng.integers(int(lo), int(hi) + 1, size=count).astype(np.float64)
    raise ValueError(f"unknown weight distribution {distribution!r}")


def with_random_weights(
    graph: Graph,
    rng: np.random.Generator,
    *,
    distribution: str = "uniform",
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> Graph:
    """Return a copy of ``graph`` with freshly drawn random weights."""
    return graph.reweighted(
        random_weights(graph.num_edges, rng, distribution=distribution, weight_range=weight_range)
    )


# --------------------------------------------------------------------------- #
# Deterministic structured graphs (used heavily by the unit tests)
# --------------------------------------------------------------------------- #
def cycle_graph(num_vertices: int) -> Graph:
    """The cycle ``C_n``."""
    if num_vertices < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    idx = np.arange(num_vertices)
    edges = np.column_stack([idx, (idx + 1) % num_vertices])
    return Graph(num_vertices, edges)


def path_graph(num_vertices: int) -> Graph:
    """The path ``P_n``."""
    if num_vertices < 1:
        raise ValueError("a path needs at least 1 vertex")
    if num_vertices == 1:
        return Graph(1, np.empty((0, 2), dtype=np.int64))
    idx = np.arange(num_vertices - 1)
    edges = np.column_stack([idx, idx + 1])
    return Graph(num_vertices, edges)


def complete_graph(num_vertices: int) -> Graph:
    """The complete graph ``K_n``."""
    iu, iv = np.triu_indices(num_vertices, k=1)
    return Graph(num_vertices, np.column_stack([iu, iv]))


def star_graph(num_leaves: int) -> Graph:
    """A star with centre 0 and ``num_leaves`` leaves."""
    if num_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    leaves = np.arange(1, num_leaves + 1)
    edges = np.column_stack([np.zeros(num_leaves, dtype=np.int64), leaves])
    return Graph(num_leaves + 1, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid graph."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
