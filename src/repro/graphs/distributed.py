"""Distributed placement of a graph onto a simulated cluster.

In the MRC model the edge set is partitioned across machines, and each
vertex (with its adjacency list) is stored on a randomly chosen machine
(Theorems 2.4, 3.3, 5.6).  :class:`DistributedGraph` captures this placement
and exposes the per-machine *word loads* that the MPC drivers feed to the
round-accounting engine: the simulator performs the actual machine-local
computation centrally (vectorized NumPy over the whole edge set), but the
load numbers are exactly what a faithful distributed execution would store.

Word accounting convention: an edge costs 3 words (two endpoints plus a
weight) and an adjacency-list entry costs 1 word.
"""

from __future__ import annotations

import numpy as np

from ..mapreduce.cluster import Cluster
from ..mapreduce.partition import balanced_partition, random_partition
from .graph import Graph

__all__ = ["DistributedGraph", "EDGE_WORDS"]

#: Words charged for storing one edge (two endpoints and one weight).
EDGE_WORDS = 3


class DistributedGraph:
    """A :class:`Graph` partitioned over the machines of a :class:`Cluster`.

    Parameters
    ----------
    graph:
        The graph to distribute.
    cluster:
        The cluster to place it on.
    rng:
        Randomness source for the random vertex placement.
    edge_placement:
        ``"balanced"`` (contiguous blocks of edges per machine, the paper's
        "assigned arbitrarily ... with ``n^{1+µ}`` per machine") or
        ``"random"``.
    """

    def __init__(
        self,
        graph: Graph,
        cluster: Cluster,
        rng: np.random.Generator,
        *,
        edge_placement: str = "balanced",
    ):
        self.graph = graph
        self.cluster = cluster
        num_machines = cluster.num_machines
        if edge_placement == "balanced":
            self.edge_machine = balanced_partition(graph.num_edges, num_machines)
        elif edge_placement == "random":
            self.edge_machine = random_partition(graph.num_edges, num_machines, rng)
        else:
            raise ValueError(f"unknown edge_placement {edge_placement!r}")
        # Vertices (and their adjacency lists) are placed uniformly at random,
        # exactly as in the paper's MapReduce implementations.
        self.vertex_machine = random_partition(graph.num_vertices, num_machines, rng)

    # ------------------------------------------------------------------ #
    # Load accounting
    # ------------------------------------------------------------------ #
    def edge_loads(self, alive_edges: np.ndarray | None = None) -> np.ndarray:
        """Words of edge storage per machine, optionally restricted to a boolean mask."""
        num_machines = self.cluster.num_machines
        if alive_edges is None:
            machines = self.edge_machine
        else:
            mask = np.asarray(alive_edges)
            if mask.dtype != bool:
                full = np.zeros(self.graph.num_edges, dtype=bool)
                full[mask.astype(np.int64)] = True
                mask = full
            machines = self.edge_machine[mask]
        counts = np.bincount(machines, minlength=num_machines)
        return counts * EDGE_WORDS

    def adjacency_loads(self, alive_edges: np.ndarray | None = None) -> np.ndarray:
        """Words of adjacency-list storage per machine.

        Each alive edge ``{u, v}`` contributes one word to the machine
        hosting ``u`` and one word to the machine hosting ``v``.
        """
        num_machines = self.cluster.num_machines
        if alive_edges is None:
            mask = np.ones(self.graph.num_edges, dtype=bool)
        else:
            mask = np.asarray(alive_edges)
            if mask.dtype != bool:
                full = np.zeros(self.graph.num_edges, dtype=bool)
                full[mask.astype(np.int64)] = True
                mask = full
        loads = np.zeros(num_machines, dtype=np.int64)
        u_hosts = self.vertex_machine[self.graph.edge_u[mask]]
        v_hosts = self.vertex_machine[self.graph.edge_v[mask]]
        if u_hosts.size:
            loads += np.bincount(u_hosts, minlength=num_machines)
            loads += np.bincount(v_hosts, minlength=num_machines)
        return loads

    def total_loads(self, alive_edges: np.ndarray | None = None) -> np.ndarray:
        """Edge storage plus adjacency storage per machine."""
        return self.edge_loads(alive_edges) + self.adjacency_loads(alive_edges)

    def max_load(self, alive_edges: np.ndarray | None = None) -> int:
        """Maximum per-machine load in words."""
        loads = self.total_loads(alive_edges)
        return int(loads.max()) if loads.size else 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def edges_on_machine(self, machine: int) -> np.ndarray:
        """Edge ids stored on ``machine``."""
        return np.flatnonzero(self.edge_machine == machine)

    def vertices_on_machine(self, machine: int) -> np.ndarray:
        """Vertex ids whose adjacency list is stored on ``machine``."""
        return np.flatnonzero(self.vertex_machine == machine)

    def word_count(self) -> int:
        """Total words stored across the cluster."""
        return int(self.total_loads().sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedGraph(n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"machines={self.cluster.num_machines})"
        )
