"""Certificate checkers for graph solutions.

Every algorithm result in the benchmark harness is validated with one of
these independent checkers before its objective value is reported, so the
approximation-ratio numbers in EXPERIMENTS.md are backed by feasibility
certificates rather than trust in the algorithm under test.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .graph import Graph

__all__ = [
    "is_vertex_cover",
    "is_matching",
    "is_b_matching",
    "is_maximal_matching",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_clique",
    "is_maximal_clique",
    "is_proper_vertex_colouring",
    "is_proper_edge_colouring",
    "num_colours_used",
    "matching_weight",
    "vertex_cover_weight",
]


def _as_vertex_set(vertices: Iterable[int]) -> set[int]:
    return {int(v) for v in vertices}


def _as_edge_id_array(edge_ids: Iterable[int]) -> np.ndarray:
    return np.asarray(sorted({int(e) for e in edge_ids}), dtype=np.int64)


# --------------------------------------------------------------------------- #
# Covers
# --------------------------------------------------------------------------- #
def is_vertex_cover(graph: Graph, cover: Iterable[int]) -> bool:
    """Return ``True`` if every edge has at least one endpoint in ``cover``."""
    cover_set = _as_vertex_set(cover)
    if any(v < 0 or v >= graph.num_vertices for v in cover_set):
        return False
    mask = np.zeros(graph.num_vertices, dtype=bool)
    if cover_set:
        mask[np.fromiter(cover_set, dtype=np.int64)] = True
    return bool(np.all(mask[graph.edge_u] | mask[graph.edge_v]))


def vertex_cover_weight(weights: Sequence[float] | np.ndarray, cover: Iterable[int]) -> float:
    """Total weight of a vertex cover under per-vertex ``weights``."""
    w = np.asarray(weights, dtype=np.float64)
    cover_idx = np.fromiter(_as_vertex_set(cover), dtype=np.int64) if cover else np.empty(0, np.int64)
    return float(w[cover_idx].sum()) if cover_idx.size else 0.0


# --------------------------------------------------------------------------- #
# Matchings
# --------------------------------------------------------------------------- #
def is_matching(graph: Graph, edge_ids: Iterable[int]) -> bool:
    """Return ``True`` if the edges are pairwise vertex-disjoint."""
    ids = _as_edge_id_array(edge_ids)
    if ids.size and (ids.min() < 0 or ids.max() >= graph.num_edges):
        return False
    endpoints = np.concatenate([graph.edge_u[ids], graph.edge_v[ids]]) if ids.size else np.empty(0)
    return len(np.unique(endpoints)) == len(endpoints)


def is_b_matching(graph: Graph, edge_ids: Iterable[int], b: Mapping[int, int] | int) -> bool:
    """Return ``True`` if every vertex ``v`` has at most ``b(v)`` incident chosen edges."""
    ids = _as_edge_id_array(edge_ids)
    if ids.size and (ids.min() < 0 or ids.max() >= graph.num_edges):
        return False
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    if ids.size:
        np.add.at(counts, graph.edge_u[ids], 1)
        np.add.at(counts, graph.edge_v[ids], 1)
    if isinstance(b, Mapping):
        limits = np.array([int(b.get(v, 1)) for v in range(graph.num_vertices)], dtype=np.int64)
    else:
        limits = np.full(graph.num_vertices, int(b), dtype=np.int64)
    return bool(np.all(counts <= limits))


def is_maximal_matching(graph: Graph, edge_ids: Iterable[int]) -> bool:
    """Return ``True`` if the matching cannot be extended by any edge."""
    ids = _as_edge_id_array(edge_ids)
    if not is_matching(graph, ids):
        return False
    matched = np.zeros(graph.num_vertices, dtype=bool)
    if ids.size:
        matched[graph.edge_u[ids]] = True
        matched[graph.edge_v[ids]] = True
    free_edge = ~matched[graph.edge_u] & ~matched[graph.edge_v]
    return not bool(free_edge.any())


def matching_weight(graph: Graph, edge_ids: Iterable[int]) -> float:
    """Total weight of the given edges (no feasibility check)."""
    ids = _as_edge_id_array(edge_ids)
    return float(graph.weights[ids].sum()) if ids.size else 0.0


# --------------------------------------------------------------------------- #
# Independent sets and cliques
# --------------------------------------------------------------------------- #
def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """Return ``True`` if no edge has both endpoints in ``vertices``."""
    vset = _as_vertex_set(vertices)
    if any(v < 0 or v >= graph.num_vertices for v in vset):
        return False
    mask = np.zeros(graph.num_vertices, dtype=bool)
    if vset:
        mask[np.fromiter(vset, dtype=np.int64)] = True
    return not bool(np.any(mask[graph.edge_u] & mask[graph.edge_v]))


def is_maximal_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """Return ``True`` if ``vertices`` is independent and no vertex can be added."""
    vset = _as_vertex_set(vertices)
    if not is_independent_set(graph, vset):
        return False
    mask = np.zeros(graph.num_vertices, dtype=bool)
    if vset:
        mask[np.fromiter(vset, dtype=np.int64)] = True
    # A vertex outside the set must have a neighbour inside the set.
    dominated = np.zeros(graph.num_vertices, dtype=bool)
    dominated[graph.edge_u[mask[graph.edge_v]]] = True
    dominated[graph.edge_v[mask[graph.edge_u]]] = True
    outside = ~mask
    return bool(np.all(dominated[outside] | ~outside[outside])) if outside.any() else True


def is_clique(graph: Graph, vertices: Iterable[int]) -> bool:
    """Return ``True`` if every pair of the given vertices is adjacent."""
    vset = _as_vertex_set(vertices)
    if any(v < 0 or v >= graph.num_vertices for v in vset):
        return False
    k = len(vset)
    if k <= 1:
        return True
    mask = np.zeros(graph.num_vertices, dtype=bool)
    mask[np.fromiter(vset, dtype=np.int64)] = True
    internal_edges = int(np.sum(mask[graph.edge_u] & mask[graph.edge_v]))
    return internal_edges == k * (k - 1) // 2


def is_maximal_clique(graph: Graph, vertices: Iterable[int]) -> bool:
    """Return ``True`` if ``vertices`` is a clique and no vertex is adjacent to all of it."""
    vset = _as_vertex_set(vertices)
    if not is_clique(graph, vset):
        return False
    k = len(vset)
    mask = np.zeros(graph.num_vertices, dtype=bool)
    if vset:
        mask[np.fromiter(vset, dtype=np.int64)] = True
    for candidate in range(graph.num_vertices):
        if mask[candidate]:
            continue
        neighbours = graph.neighbors(candidate)
        if neighbours.size and int(np.sum(mask[neighbours])) == k and k > 0:
            return False
        if k == 0:
            # Empty "clique" is never maximal in a non-empty graph.
            return False
    return True


# --------------------------------------------------------------------------- #
# Colourings
# --------------------------------------------------------------------------- #
def is_proper_vertex_colouring(graph: Graph, colours: Mapping[int, object] | Sequence[object]) -> bool:
    """Return ``True`` if every vertex is coloured and no edge is monochromatic."""
    if isinstance(colours, Mapping):
        if len(colours) < graph.num_vertices:
            return False
        lookup = colours
    else:
        if len(colours) < graph.num_vertices:
            return False
        lookup = {v: colours[v] for v in range(graph.num_vertices)}
    for u, v, _ in graph.edges():
        if lookup[u] == lookup[v]:
            return False
    return all(lookup.get(v) is not None for v in range(graph.num_vertices))


def is_proper_edge_colouring(graph: Graph, colours: Mapping[int, object] | Sequence[object]) -> bool:
    """Return ``True`` if every edge is coloured and incident edges differ in colour."""
    if isinstance(colours, Mapping):
        lookup = colours
        if len(lookup) < graph.num_edges:
            return False
    else:
        if len(colours) < graph.num_edges:
            return False
        lookup = {e: colours[e] for e in range(graph.num_edges)}
    for v in range(graph.num_vertices):
        incident = graph.incident_edges(v)
        seen = set()
        for e in incident:
            colour = lookup.get(int(e))
            if colour is None:
                return False
            if colour in seen:
                return False
            seen.add(colour)
    return True


def num_colours_used(colours: Mapping[object, object] | Sequence[object]) -> int:
    """Number of distinct colours in a colouring."""
    values = colours.values() if isinstance(colours, Mapping) else colours
    return len(set(values))
