"""Command-line interface for running the reproduction experiments.

Installed as ``python -m repro``.  Subcommands:

``solve``
    Solve one problem instance through the unified algorithm registry and
    print the canonical JSON response — byte-identical to
    :func:`repro.solve` and to a ``repro serve`` response body for the
    same ``(algorithm, scenario, params, seed, trials)``.

``algorithms``
    Print the algorithm registry (name, kind, parameters, guarantee) — the
    same source of truth behind ``repro solve``, the experiment drivers,
    and the service's ``/algorithms`` route.

``figure1``
    Run every (or selected) Figure-1 experiment and print the measured table
    (the same data as ``examples/reproduce_figure1.py``).

``experiment``
    Run a single named experiment with a chosen seed / trial count and print
    its full record (parameters, metrics, theoretical bounds).

``ablation``
    Run one of the ablation sweeps (``mu``, ``eta`` or ``epsilon``) and print
    the sweep table.

``scaling``
    Run one of the scaling sweeps (``n``, ``c`` or ``space``) and print the
    growth curve.

``bench``
    Time every vectorized kernel against its retained pure-Python reference
    on the Figure-1 hot paths, write ``BENCH_kernels.json``, and fail when a
    kernel's output differs from its reference or a gated kernel misses its
    speedup floor (see ``docs/PERFORMANCE.md``).

``data``
    Dataset tools (see ``docs/DATASETS.md``): ``convert`` parses a raw
    dataset file (SNAP edge list, Matrix Market, DIMACS, set-cover text;
    gzip transparent) into the fast ``.npz`` instance store, ``info``
    inspects any dataset file, ``list`` prints the scenario registry.

``serve``
    Run the batched solver service (see ``docs/SERVICE.md``): an asyncio
    HTTP server that micro-batches concurrent JSON solve requests through
    the sweep backends and answers byte-identically to a direct library
    call with the same (scenario, algorithm, params, seed).  Batching is
    latency-aware by default (``--target-p99-ms``), overload is shed with
    429s (``--max-queue``), and per-request deadlines return 504s
    (``--deadline-ms``).

``worker``
    Run a distributed sweep worker (see ``docs/DISTRIBUTED.md``): the
    solver service plus the ``/register``/``/pull``/``/result`` endpoints
    a coordinator drives.  Start several (on one or many hosts), then run
    any sweep with ``--backend distributed --workers host:port,...``.

``loadtest``
    Replay a seeded request trace (Poisson / bursty on-off / ramp / a
    recorded JSONL file) against a live or in-process service over
    keep-alive connections and report p50/p99/p999 latency, throughput,
    shed (429) and error counts, and server batch occupancy.  Optionally
    appends the report to the ``BENCH_service.json`` trajectory and gates
    absolute p99, 5xx counts, and p99 regression vs the previous run.
    ``--pipeline N`` keeps up to N requests in flight per connection
    (HTTP/1.1 pipelining).

The experiment subcommands accept ``--scenario NAME`` / ``--scenario
file:PATH`` to run on a named workload or an ingested dataset instead of
the built-in generators (``scaling c`` excepted — its sweep variable *is*
the generator's densification exponent).

Every experiment subcommand accepts the execution-backend flags (``bench``
restricts them: no ``mp``, no cache — concurrent or replayed wall-clock
timings are not measurements):

``--backend {serial,mp,batch,distributed}``
    How to execute the sweep's independent points (default ``serial``);
    ``mp`` fans points out across worker processes, ``distributed``
    across ``repro worker`` processes/hosts — identical results either way.
``--jobs N``
    Worker count for ``--backend mp`` (default: all CPUs).
``--workers HOST:PORT,...``
    Worker addresses for ``--backend distributed`` (default: the
    ``REPRO_WORKERS`` environment variable).
``--cache-dir PATH``
    Disk cache for completed points; re-runs skip work already done.

Examples
--------
::

    python -m repro solve matching --seed 7 --param n=80 --param mu=0.25
    python -m repro algorithms
    python -m repro figure1 --seed 7 --trials 3
    python -m repro figure1 --backend mp --jobs 4 --cache-dir .sweep-cache
    python -m repro figure1 --scenario social-sparse
    python -m repro experiment fig1-matching --seed 1
    python -m repro ablation mu --algorithm matching --backend mp
    python -m repro scaling n --algorithm mis
    python -m repro bench --quick --output BENCH_kernels.json
    python -m repro data convert as-caida.txt.gz caida.npz
    python -m repro figure1 --scenario file:caida.npz
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from ._version import __version__
from .analysis import format_table
from .backends import BACKENDS
from .datasets import (
    FORMATS,
    SCENARIOS,
    DatasetError,
    detect_format,
    load_file,
    read_header,
    resolve_scenario,
    save_dataset,
)
from .experiments import (
    rounds_vs_c,
    rounds_vs_n,
    run_figure1,
    space_vs_mu,
    sweep_epsilon,
    sweep_mu,
    sweep_sample_budget,
)
from .experiments.harness import ExperimentRecord
from .registry import (
    RegistryError,
    UnknownAlgorithmError,
    experiment_names,
    iter_algorithms,
)
from .registry import solve as registry_solve

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if jobs < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return jobs


def _cache_dir(value: str) -> str:
    import os

    if os.path.exists(value) and not os.path.isdir(value):
        raise argparse.ArgumentTypeError(f"{value!r} exists and is not a directory")
    return value


def _workers_list(value: str) -> list[str]:
    addresses = [part.strip() for part in value.split(",") if part.strip()]
    if not addresses:
        raise argparse.ArgumentTypeError("expected host:port[,host:port...]")
    for address in addresses:
        host, sep, port = address.rpartition(":")
        if "//" not in address and (not sep or not host or not port.isdigit()):
            raise argparse.ArgumentTypeError(f"{address!r} is not host:port")
    return addresses


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared execution-backend flags to a subcommand parser."""
    group = parser.add_argument_group("execution backend")
    group.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial",
        help="how to execute the sweep's independent points (default: serial)",
    )
    group.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for --backend mp (default: all CPUs)",
    )
    group.add_argument(
        "--workers",
        type=_workers_list,
        default=None,
        metavar="HOST:PORT,...",
        help="worker addresses for --backend distributed (default: the "
        "REPRO_WORKERS environment variable; see docs/DISTRIBUTED.md)",
    )
    group.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        metavar="PATH",
        help="cache completed points here; re-runs skip finished work",
    )


def _add_scenario_option(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--scenario`` flag to a subcommand parser."""
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME|file:PATH",
        help="run on a named workload scenario or an ingested dataset file "
        "(see 'repro data list' and docs/DATASETS.md)",
    )


def _param_value(raw: str) -> object:
    """Parse a ``--param`` value: JSON when possible, a bare string otherwise."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _param_pair(value: str) -> tuple[str, object]:
    key, sep, raw = value.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"{value!r} is not of the form key=value")
    return key, _param_value(raw)


def _add_serve_options(parser: argparse.ArgumentParser, *, worker: bool = False) -> None:
    """Attach the service flags shared by ``serve`` and ``worker``."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=8081 if worker else 8080,
        help=f"TCP port (default: {8081 if worker else 8080}; 0 picks a free "
        "port and prints it)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="serial" if worker else "batch",
        help="how pulled points execute (default: serial)"
        if worker
        else "how each micro-batch executes (default: batch — memoises "
        "duplicate concurrent requests)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes for --backend mp (default: all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        metavar="PATH",
        help="ResultCache directory; repeated requests replay instead of recomputing",
    )
    parser.add_argument(
        "--max-batch",
        type=_positive_int,
        default=32,
        metavar="N",
        help="largest micro-batch a single sweep call executes (default: 32)",
    )
    parser.add_argument(
        "--batch-wait-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long a batch waits for more concurrent requests (default: 5)",
    )
    parser.add_argument(
        "--instance-cache",
        type=_positive_int,
        default=64,
        metavar="N",
        help="capacity of the materialized file-scenario LRU (default: 64)",
    )
    parser.add_argument(
        "--no-adaptive",
        action="store_true",
        help="disable latency-aware adaptive batching (fixed max-batch/wait)",
    )
    parser.add_argument(
        "--target-p99-ms",
        type=float,
        default=500.0,
        metavar="MS",
        help="latency SLO the adaptive batcher steers under (default: 500)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        metavar="N",
        help="shed requests with 429 beyond this queue depth; 0 disables "
        "(default: 1024)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request deadline -> 504 (default: none; clients "
        "may tighten via X-Repro-Deadline-Ms)",
    )
    parser.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds to receive one full request / keep-alive idle limit "
        "(default: 30)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds a SIGTERM shutdown waits for in-flight and queued "
        "work to finish (default: 30)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Greedy and Local Ratio Algorithms in the MapReduce Model' (SPAA 2018)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve_lines = [
        f"  {spec.name:<18} {spec.guarantee}" for spec in iter_algorithms()
    ]
    slv = sub.add_parser(
        "solve",
        help="solve one instance via the algorithm registry (canonical JSON output)",
        description=(
            "Solve one problem instance through the unified algorithm registry "
            "and print the canonical JSON response — byte-identical to "
            "repro.solve() and to a `repro serve` response for the same "
            "(algorithm, scenario, params, seed, trials)."
        ),
        epilog="registered algorithms (see `repro algorithms`):\n" + "\n".join(solve_lines),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    slv.add_argument(
        "algorithm",
        metavar="ALGORITHM",
        help="registry name or alias (see `repro algorithms`)",
    )
    slv.add_argument("--seed", type=int, default=0)
    slv.add_argument("--trials", type=_positive_int, default=1)
    slv.add_argument(
        "--param",
        "-p",
        dest="params",
        type=_param_pair,
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="solver parameter override (repeatable; values parsed as JSON "
        "when possible, e.g. -p n=80 -p mu=0.25)",
    )
    slv.add_argument(
        "--params-json",
        default=None,
        metavar="JSON",
        help="solver parameter overrides as one JSON object",
    )
    slv.add_argument(
        "--pretty", action="store_true", help="indent the JSON instead of canonical bytes"
    )
    _add_scenario_option(slv)
    _add_backend_options(slv)

    algs = sub.add_parser(
        "algorithms",
        help="list the algorithm registry (name, kind, params, guarantee)",
    )
    algs.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    lint = sub.add_parser(
        "lint",
        help="determinism & concurrency static analysis (see docs/ANALYSIS.md)",
        description=(
            "Run the repro static-analysis pass: AST checkers that prove the "
            "determinism and lock-discipline invariants the runtime test suite "
            "can only sample (unseeded RNG, non-canonical JSON on wire paths, "
            "order-leaking set iteration, wall-clock reads in solvers, "
            "unlocked shared state, registry conformance).  Exits non-zero on "
            "any finding not in the committed baseline."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to scan (default: src)",
    )
    lint.add_argument("--json", action="store_true", help="emit the canonical JSON report")
    lint.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE ('-' for stdout)",
    )
    lint.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="parse files in parallel with N worker processes (default: 1)",
    )
    lint.add_argument(
        "--cache",
        metavar="FILE",
        help="incremental summary cache file; unchanged files (by content "
        "hash) skip re-parsing (default: no cache)",
    )
    lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        metavar="FILE",
        help="baseline file of accepted pre-existing findings "
        "(default: lint-baseline.json under --root)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file entirely"
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding, then exit 0",
    )
    lint.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="directory findings/baseline paths are relative to (default: cwd)",
    )
    lint.add_argument(
        "--verbose", "-v", action="store_true", help="also list baselined/suppressed findings"
    )

    fig1 = sub.add_parser("figure1", help="run the Figure-1 experiments")
    fig1.add_argument("--seed", type=int, default=2018)
    fig1.add_argument("--trials", type=int, default=1)
    fig1.add_argument(
        "--only",
        nargs="*",
        choices=sorted(experiment_names()),
        help="restrict to these experiments",
    )
    fig1.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    _add_scenario_option(fig1)
    _add_backend_options(fig1)

    single = sub.add_parser("experiment", help="run one experiment and print its record")
    single.add_argument("name", choices=sorted(experiment_names()))
    single.add_argument("--seed", type=int, default=2018)
    single.add_argument("--trials", type=int, default=1)
    single.add_argument("--json", action="store_true")
    _add_scenario_option(single)
    _add_backend_options(single)

    ablation = sub.add_parser("ablation", help="run an ablation sweep")
    ablation.add_argument("sweep", choices=["mu", "eta", "epsilon"])
    ablation.add_argument("--seed", type=int, default=2018)
    ablation.add_argument(
        "--algorithm",
        default="matching",
        help="for the mu sweep: matching | vertex-cover | mis",
    )
    ablation.add_argument(
        "--problem",
        default=None,
        help="for eta/epsilon sweeps: matching|set-cover / set-cover|b-matching",
    )
    ablation.add_argument("--json", action="store_true")
    _add_scenario_option(ablation)
    _add_backend_options(ablation)

    scaling = sub.add_parser("scaling", help="run a scaling sweep")
    scaling.add_argument("sweep", choices=["n", "c", "space"])
    scaling.add_argument("--seed", type=int, default=2018)
    scaling.add_argument(
        "--algorithm",
        default="matching",
        help="for the n sweep: matching | vertex-cover | mis",
    )
    scaling.add_argument("--json", action="store_true")
    _add_scenario_option(scaling)
    _add_backend_options(scaling)

    bench = sub.add_parser(
        "bench", help="benchmark the vectorized kernels against their references"
    )
    bench.add_argument("--seed", type=int, default=2018)
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller sizes / fewer repeats (still n ≥ 2000 on the gated kernels)",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="where to write the JSON report (default: BENCH_kernels.json)",
    )
    bench.add_argument("--json", action="store_true", help="also print the report as JSON")
    _add_backend_options(bench)

    srv = sub.add_parser(
        "serve", help="run the batched solver service (see docs/SERVICE.md)"
    )
    _add_serve_options(srv)

    wrk = sub.add_parser(
        "worker",
        help="run a distributed sweep worker (see docs/DISTRIBUTED.md)",
        description=(
            "Run the solver service in worker mode: everything `repro serve` "
            "does, plus the /register, /pull, and /result endpoints a "
            "distributed-sweep coordinator drives.  Start one per "
            "core/host, then run any sweep with --backend distributed "
            "--workers host:port,host:port,..."
        ),
    )
    _add_serve_options(wrk, worker=True)

    load = sub.add_parser(
        "loadtest",
        help="replay a request trace against the service and report SLO percentiles",
        description=(
            "Replay a seeded, deterministic request trace against a live "
            "(--url) or in-process repro service over keep-alive connections; "
            "report p50/p99/p999 latency, throughput, 429/5xx counts, and "
            "server batch occupancy (see docs/SERVICE.md)."
        ),
    )
    load.add_argument(
        "--url",
        default=None,
        help="target an already-running service instead of an in-process one",
    )
    trace_group = load.add_argument_group("trace")
    trace_group.add_argument(
        "--trace",
        choices=["poisson", "bursty", "ramp"],
        default="bursty",
        help="synthetic arrival process (default: bursty on/off)",
    )
    trace_group.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="replay a recorded JSONL trace instead of a synthetic one",
    )
    trace_group.add_argument(
        "--record",
        default=None,
        metavar="PATH",
        help="save the generated trace as JSONL before replaying",
    )
    trace_group.add_argument(
        "--rate", type=float, default=80.0, help="arrival rate req/s; bursty: ON-window rate (default: 80)"
    )
    trace_group.add_argument(
        "--end-rate", type=float, default=None, help="ramp: final rate (default: 4x --rate)"
    )
    trace_group.add_argument(
        "--duration", type=float, default=10.0, help="trace length in seconds (default: 10)"
    )
    trace_group.add_argument(
        "--on-seconds", type=float, default=0.5, help="bursty: ON window length (default: 0.5)"
    )
    trace_group.add_argument(
        "--off-seconds", type=float, default=0.5, help="bursty: OFF window length (default: 0.5)"
    )
    trace_group.add_argument("--seed", type=int, default=2018)
    trace_group.add_argument(
        "--rate-scale",
        type=float,
        default=1.0,
        help="replay speed multiplier (2.0 = twice as fast; default: 1.0)",
    )
    trace_group.add_argument(
        "--max-requests", type=_positive_int, default=None, help="truncate the trace"
    )
    workload = load.add_argument_group("request mix")
    workload.add_argument("--algorithm", default="mis")
    workload.add_argument("--n", type=int, default=60, help="generator workload size (default: 60)")
    workload.add_argument(
        "--distinct", type=_positive_int, default=8, help="distinct seeds in the mix (default: 8)"
    )
    _add_scenario_option(load)
    client = load.add_argument_group("client")
    client.add_argument(
        "--connections", type=_positive_int, default=16, help="keep-alive connection pool (default: 16)"
    )
    client.add_argument(
        "--pipeline",
        type=_positive_int,
        default=1,
        metavar="N",
        help="HTTP/1.1 pipelining depth: keep up to N requests in flight "
        "per connection (default: 1 — no pipelining)",
    )
    client.add_argument(
        "--client-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="send X-Repro-Deadline-Ms on every request",
    )
    client.add_argument(
        "--verify",
        action="store_true",
        help="check every 200 body byte-for-byte against the direct library call",
    )
    server_group = load.add_argument_group(
        "in-process server (ignored with --url)"
    )
    server_group.add_argument("--backend", choices=sorted(BACKENDS), default="batch")
    server_group.add_argument("--jobs", type=_positive_int, default=None, metavar="N")
    server_group.add_argument("--cache-dir", type=_cache_dir, default=None, metavar="PATH")
    server_group.add_argument("--max-batch", type=_positive_int, default=32, metavar="N")
    server_group.add_argument("--batch-wait-ms", type=float, default=5.0, metavar="MS")
    server_group.add_argument("--no-adaptive", action="store_true")
    server_group.add_argument("--target-p99-ms", type=float, default=500.0, metavar="MS")
    server_group.add_argument("--max-queue", type=int, default=1024, metavar="N")
    server_group.add_argument("--deadline-ms", type=float, default=None, metavar="MS")
    gates = load.add_argument_group("report & gates")
    gates.add_argument("--json", action="store_true", help="emit the full JSON report")
    gates.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="append the report to this BENCH_service.json trajectory file",
    )
    gates.add_argument(
        "--label",
        default="default",
        help="trajectory label; regression gating compares same-label runs",
    )
    gates.add_argument(
        "--gate-p99-ms", type=float, default=None, metavar="MS",
        help="exit non-zero when p99 exceeds this bound",
    )
    gates.add_argument(
        "--gate-regression",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit non-zero when p99 regresses more than FRAC (e.g. 0.5 = +50%%) "
        "vs the previous same-label record in --output",
    )
    gates.add_argument(
        "--fail-on-5xx", action="store_true", help="exit non-zero on any 5xx/transport error"
    )

    data = sub.add_parser("data", help="dataset tools: convert, inspect, list scenarios")
    data_sub = data.add_subparsers(dest="data_command", required=True)
    convert = data_sub.add_parser(
        "convert", help="parse a raw dataset file into the fast .npz instance store"
    )
    convert.add_argument("input", help="raw dataset file (gzip transparent)")
    convert.add_argument("output", help="output .npz path")
    convert.add_argument(
        "--format",
        dest="fmt",
        choices=sorted(FORMATS),
        default=None,
        help="input format (default: detect from extension/content)",
    )
    convert.add_argument("--name", default=None, help="dataset name recorded in the header")
    info = data_sub.add_parser("info", help="inspect a dataset file (raw or stored)")
    info.add_argument("path")
    info.add_argument("--json", action="store_true")
    lst = data_sub.add_parser("list", help="list the registered workload scenarios")
    lst.add_argument("--json", action="store_true")
    return parser


def _record_to_json(record: ExperimentRecord) -> dict[str, object]:
    # Values are normalised through the same _jsonable mapping the
    # library/service canonical path uses — a lossy ``default=str`` here
    # would stringify e.g. np.int64 metrics and silently drift from the
    # bytes the other surfaces emit for the same record.
    from .backends.base import _jsonable

    return {
        "experiment": record.experiment,
        "valid": record.valid,
        "parameters": _jsonable(record.parameters),
        "metrics": _jsonable(record.metrics),
        "bounds": _jsonable(record.bounds),
        "notes": _jsonable(record.notes),
    }


def _print_records(records: Sequence[ExperimentRecord], as_json: bool) -> None:
    if as_json:
        print(json.dumps([_record_to_json(r) for r in records], indent=2, sort_keys=True))
        return
    rows = []
    metric_keys: list[str] = []
    for record in records:
        for key in record.metrics:
            if key not in metric_keys:
                metric_keys.append(key)
    headers = ["experiment", "valid"] + [f"param:{k}" for k in records[0].parameters] + metric_keys
    for record in records:
        row: list[object] = [record.experiment, "OK" if record.valid else "INVALID"]
        row.extend(record.parameters.get(k, "") for k in records[0].parameters)
        row.extend(record.metrics.get(k, "") for k in metric_keys)
        rows.append(row)
    print(format_table(headers, rows))


def _backend_kwargs(args: argparse.Namespace) -> dict[str, object]:
    backend: object = args.backend
    if args.backend == "distributed":
        # Construct the backend here (instead of forwarding a `workers`
        # kwarg) so every sweep driver keeps its existing signature —
        # run_sweep accepts Backend instances everywhere.
        from .backends.distributed import DistributedBackend

        backend = DistributedBackend(getattr(args, "workers", None))
    return {
        "backend": backend,
        "jobs": args.jobs,
        "cache": args.cache_dir,
    }


def _run_solve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    params: dict[str, object] = {}
    if args.params_json is not None:
        try:
            decoded = json.loads(args.params_json)
        except json.JSONDecodeError as exc:
            parser.error(f"--params-json is not valid JSON: {exc}")
        if not isinstance(decoded, dict):
            parser.error("--params-json must be a JSON object")
        params.update(decoded)
    params.update(dict(args.params))
    try:
        result = registry_solve(
            args.algorithm,
            scenario=args.scenario,
            params=params,
            seed=args.seed,
            trials=args.trials,
            **_backend_kwargs(args),
        )
    except (UnknownAlgorithmError, RegistryError) as exc:
        parser.error(str(exc))
    if args.pretty:
        print(json.dumps(result.payload(), indent=2, sort_keys=True))
    else:
        sys.stdout.buffer.write(result.canonical_json() + b"\n")
        sys.stdout.buffer.flush()
    return 0 if result.valid else 1


def _run_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.lint import (
        lint_paths,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )

    root = Path(args.root).resolve()
    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    baseline = None if args.no_baseline else load_baseline(baseline_path)
    report = lint_paths(
        args.paths, root=root, baseline=baseline, jobs=args.jobs, cache_path=args.cache
    )
    if args.update_baseline:
        before = set((baseline or load_baseline(baseline_path)).entries)
        updated = write_baseline(report.findings, baseline_path)
        total = sum(updated.entries.values())
        pruned = len(before - set(updated.entries))
        note = f", {pruned} stale entr{'y' if pruned == 1 else 'ies'} pruned" if pruned else ""
        print(f"baseline written: {baseline_path} ({total} entries{note})")
        return 0
    if args.sarif:
        sarif = render_sarif(report)
        if args.sarif == "-":
            print(sarif)
        else:
            Path(args.sarif).write_text(sarif + "\n", encoding="utf-8")
    print(render_json(report) if args.json else render_text(report, verbose=args.verbose))
    if report.files_scanned == 0:
        print("error: no python files found under the given paths", file=sys.stderr)
        return 2
    return report.exit_code


def _run_algorithms(args: argparse.Namespace) -> int:
    specs = list(iter_algorithms())
    if args.json:
        # Same rendering as the service's GET /algorithms — one source of truth.
        payload = {spec.name: spec.listing_payload() for spec in specs}
        # sort_keys keeps this byte-aligned (modulo whitespace) with the
        # service's GET /algorithms, which renders canonically.
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            spec.name,
            spec.kind,
            ", ".join(f"{k}={v!r}" for k, v in spec.params.items()),
            spec.guarantee,
            spec.theorem,
        ]
        for spec in specs
    ]
    print(format_table(["algorithm", "kind", "params (defaults)", "guarantee", "theorem"], rows))
    print(
        "\naliases: "
        + "; ".join(f"{spec.name} ← {', '.join(spec.aliases)}" for spec in specs if spec.aliases)
    )
    return 0


def _run_figure1(args: argparse.Namespace) -> int:
    records = run_figure1(
        args.seed,
        experiments=args.only or None,
        trials=args.trials,
        scenario=args.scenario,
        **_backend_kwargs(args),
    )
    _print_records(records, args.json)
    return 0 if all(r.valid for r in records) else 1


def _run_single(args: argparse.Namespace) -> int:
    [record] = run_figure1(
        args.seed,
        experiments=[args.name],
        trials=args.trials,
        scenario=args.scenario,
        **_backend_kwargs(args),
    )
    if args.json:
        print(json.dumps(_record_to_json(record), indent=2, sort_keys=True))
    else:
        print(f"experiment: {record.experiment}  (valid: {record.valid})")
        print(f"parameters: {record.parameters}")
        rows = [[k, v, record.bounds.get(k, "")] for k, v in sorted(record.metrics.items())]
        print(format_table(["metric", "measured", "theoretical bound"], rows))
    return 0 if record.valid else 1


def _run_ablation(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    kwargs = _backend_kwargs(args) | {"scenario": args.scenario}
    if args.sweep == "mu":
        records = sweep_mu(rng, algorithm=args.algorithm, **kwargs)
    elif args.sweep == "eta":
        records = sweep_sample_budget(rng, problem=args.problem or "matching", **kwargs)
    else:
        records = sweep_epsilon(rng, problem=args.problem or "set-cover", **kwargs)
    _print_records(records, args.json)
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from .kernels.bench import DEFAULT_OUTPUT, run_kernel_bench, write_report

    report = run_kernel_bench(
        args.seed,
        quick=args.quick,
        strict=False,
        backend=args.backend,
        jobs=args.jobs,
    )
    write_report(report, args.output or DEFAULT_OUTPUT)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        rows = [
            [
                r["kernel"],
                " ".join(f"{k}={v}" for k, v in r["sizes"].items()),
                f"{r['reference_seconds'] * 1e3:.2f}",
                f"{r['kernel_seconds'] * 1e3:.2f}",
                f"{r['speedup']:.2f}x",
                "OK" if r["identical"] else "MISMATCH",
            ]
            for r in report["results"]
        ]
        print(
            format_table(
                ["kernel", "sizes", "reference ms", "kernel ms", "speedup", "identical"],
                rows,
            )
        )
    for failure in report["failures"]:
        print(f"FAIL: {failure}")
    return 0 if report["ok"] else 1


def _run_scaling(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    kwargs = _backend_kwargs(args)
    if args.sweep == "n":
        records = rounds_vs_n(rng, algorithm=args.algorithm, scenario=args.scenario, **kwargs)
    elif args.sweep == "c":
        records = rounds_vs_c(rng, **kwargs)
    else:
        records = space_vs_mu(rng, scenario=args.scenario, **kwargs)
    _print_records(records, args.json)
    return 0


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def _dataset_summary(obj) -> dict[str, object]:
    """JSON-friendly stats for a loaded graph or set cover instance."""
    from .graphs import Graph

    if isinstance(obj, Graph):
        return {
            "kind": "graph",
            "num_vertices": obj.num_vertices,
            "num_edges": obj.num_edges,
            "densification_exponent": round(obj.densification_exponent(), 4),
            "max_degree": obj.max_degree(),
            "weighted": bool(obj.num_edges and not bool(np.all(obj.weights == 1.0))),
            "total_weight": obj.total_weight(),
        }
    return {
        "kind": "setcover",
        "num_sets": obj.num_sets,
        "num_elements": obj.num_elements,
        "frequency": obj.frequency,
        "max_set_size": obj.max_set_size,
        "weight_ratio": round(obj.weight_ratio, 6),
        "total_size": obj.total_size,
    }


def _run_data(args: argparse.Namespace) -> int:
    import os

    if args.data_command == "list":
        rows = [
            [s.name, s.kind, "yes" if s.sized else "no", s.description]
            for s in (SCENARIOS[name] for name in sorted(SCENARIOS))
        ]
        if args.json:
            payload = [
                {"name": r[0], "kind": r[1], "sized": r[2] == "yes", "description": r[3]}
                for r in rows
            ]
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(format_table(["scenario", "kind", "sized", "description"], rows))
            print("\nplus 'file:<path>' for any dataset file (raw or converted .npz).")
        return 0

    if args.data_command == "info":
        obj, info = load_file(args.path)
        summary = _dataset_summary(obj)
        if args.json:
            from .backends.base import _jsonable

            payload = _jsonable({"path": args.path, "info": info, **summary})
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            rows = [[k, v] for k, v in summary.items()]
            rows += [[f"ingest:{k}", v] for k, v in info.items() if k != "header"]
            if "header" in info:
                header = info["header"]
                rows += [
                    ["store:schema_version", header.get("schema_version")],
                    ["store:name", header.get("name", "")],
                    ["store:source", header.get("source", "")],
                ]
            print(format_table(["property", "value"], rows))
        return 0

    # convert
    fmt = args.fmt or detect_format(args.input)
    if fmt == "store":
        raise DatasetError(f"{args.input!r} is already a stored dataset")
    obj, info = load_file(args.input, fmt)
    name = args.name or os.path.basename(args.input)
    header = save_dataset(args.output, obj, name=name, source=args.input, extra=info)
    size = os.path.getsize(args.output)
    summary = _dataset_summary(obj)
    shape = ", ".join(f"{k}={v}" for k, v in summary.items() if k != "kind")
    print(f"converted {args.input} ({info['format']}) -> {args.output}")
    print(f"  {header['kind']}: {shape}")
    print(f"  {_format_bytes(size)} on disk; load it with --scenario file:{args.output}")
    return 0


def _run_serve(args: argparse.Namespace, *, worker: bool = False) -> int:
    from .service import serve

    if args.port < 0 or args.port > 65535:
        raise SystemExit("port must be in [0, 65535]")
    return serve(
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
        backend=args.backend,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        max_batch=args.max_batch,
        batch_wait_ms=args.batch_wait_ms,
        instance_cache=args.instance_cache,
        adaptive=not args.no_adaptive,
        target_p99_ms=args.target_p99_ms,
        max_queue=args.max_queue,
        deadline_ms=args.deadline_ms,
        read_timeout=args.read_timeout,
        worker=worker,
    )


def _build_loadtest_trace(args: argparse.Namespace):
    from . import loadgen

    if args.trace_file:
        return loadgen.load_trace(args.trace_file)
    bodies = loadgen.default_bodies(
        algorithm=args.algorithm,
        n=args.n,
        distinct=args.distinct,
        scenario=args.scenario,
    )
    if args.trace == "poisson":
        return loadgen.poisson_trace(
            rate=args.rate, duration=args.duration, bodies=bodies, seed=args.seed
        )
    if args.trace == "ramp":
        end_rate = args.end_rate if args.end_rate is not None else args.rate * 4.0
        return loadgen.ramp_trace(
            start_rate=args.rate,
            end_rate=end_rate,
            duration=args.duration,
            bodies=bodies,
            seed=args.seed,
        )
    return loadgen.onoff_trace(
        on_rate=args.rate,
        duration=args.duration,
        bodies=bodies,
        on_seconds=args.on_seconds,
        off_seconds=args.off_seconds,
        seed=args.seed,
    )


def _run_loadtest(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from . import loadgen
    from .loadgen.bench import append_history, gate, load_history

    try:
        trace = _build_loadtest_trace(args)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))
    if not len(trace):
        parser.error("the trace is empty; raise --rate or --duration")
    if args.record:
        loadgen.save_trace(trace, args.record)
        print(f"recorded {len(trace)} requests to {args.record}")

    config = loadgen.ReplayConfig(
        rate_scale=args.rate_scale,
        max_requests=args.max_requests,
        connections=args.connections,
        verify=args.verify,
        deadline_ms=args.client_deadline_ms,
        pipeline=args.pipeline,
    )
    service_kwargs = {}
    if not args.url:
        service_kwargs = dict(
            backend=args.backend,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            max_batch=args.max_batch,
            batch_wait_ms=args.batch_wait_ms,
            adaptive=not args.no_adaptive,
            target_p99_ms=args.target_p99_ms,
            max_queue=args.max_queue,
            deadline_ms=args.deadline_ms,
        )
    report = loadgen.run_replay(trace, url=args.url, config=config, **service_kwargs)

    history = load_history(args.output) if args.output else None
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    if args.output:
        append_history(args.output, report, label=args.label)
        print(f"trajectory: appended to {args.output} (label {args.label!r})")

    failures = gate(
        report,
        max_p99_ms=args.gate_p99_ms,
        fail_on_5xx=args.fail_on_5xx,
        history=history,
        label=args.label,
        max_regression=args.gate_regression,
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "algorithms":
        return _run_algorithms(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "data":
        try:
            return _run_data(args)
        except DatasetError as exc:
            parser.error(str(exc))
    if args.jobs is not None and args.backend != "mp":
        parser.error("--jobs is only meaningful with --backend mp")
    if getattr(args, "workers", None) is not None and args.backend != "distributed":
        parser.error("--workers is only meaningful with --backend distributed")
    if getattr(args, "scenario", None) is not None:
        if args.command == "scaling" and args.sweep == "c":
            parser.error(
                "scaling c sweeps the generator's densification exponent; "
                "--scenario is not meaningful there"
            )
        try:
            resolve_scenario(args.scenario)
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
    if args.command == "bench" and args.backend in ("mp", "distributed"):
        # Concurrent workers contend for cores (and distributed adds network
        # time), so each worker's wall-clock timings absorb the others'
        # preemptions — the measured ratios stop meaning anything.  Timing
        # sweeps must run uncontended.
        parser.error("bench measures wall-clock; use --backend serial or batch")
    if args.command == "bench" and args.cache_dir is not None:
        # A cache hit would replay a previous run's timings as if they were
        # fresh measurements.
        parser.error("bench measures wall-clock; results must not be cached")
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "worker":
        return _run_serve(args, worker=True)
    if args.command == "loadtest":
        return _run_loadtest(args, parser)
    if args.command == "solve":
        return _run_solve(args, parser)
    if args.command == "figure1":
        return _run_figure1(args)
    if args.command == "experiment":
        return _run_single(args)
    if args.command == "ablation":
        return _run_ablation(args)
    if args.command == "scaling":
        return _run_scaling(args)
    if args.command == "bench":
        return _run_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
