"""Command-line interface for running the reproduction experiments.

Installed as ``python -m repro``.  Three subcommands:

``figure1``
    Run every (or selected) Figure-1 experiment and print the measured table
    (the same data as ``examples/reproduce_figure1.py``).

``experiment``
    Run a single named experiment with a chosen seed / trial count and print
    its full record (parameters, metrics, theoretical bounds).

``ablation``
    Run one of the ablation sweeps (``mu``, ``eta`` or ``epsilon``) and print
    the sweep table.

Examples
--------
::

    python -m repro figure1 --seed 7 --trials 3
    python -m repro experiment fig1-matching --seed 1
    python -m repro ablation mu --algorithm matching
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from .analysis import format_table
from .experiments import (
    FIGURE1_EXPERIMENTS,
    aggregate_records,
    run_trials,
    sweep_epsilon,
    sweep_mu,
    sweep_sample_budget,
)
from .experiments.harness import ExperimentRecord

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Greedy and Local Ratio Algorithms in the MapReduce Model' (SPAA 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig1 = sub.add_parser("figure1", help="run the Figure-1 experiments")
    fig1.add_argument("--seed", type=int, default=2018)
    fig1.add_argument("--trials", type=int, default=1)
    fig1.add_argument(
        "--only",
        nargs="*",
        choices=sorted(FIGURE1_EXPERIMENTS),
        help="restrict to these experiments",
    )
    fig1.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    single = sub.add_parser("experiment", help="run one experiment and print its record")
    single.add_argument("name", choices=sorted(FIGURE1_EXPERIMENTS))
    single.add_argument("--seed", type=int, default=2018)
    single.add_argument("--trials", type=int, default=1)
    single.add_argument("--json", action="store_true")

    ablation = sub.add_parser("ablation", help="run an ablation sweep")
    ablation.add_argument("sweep", choices=["mu", "eta", "epsilon"])
    ablation.add_argument("--seed", type=int, default=2018)
    ablation.add_argument(
        "--algorithm",
        default="matching",
        help="for the mu sweep: matching | vertex-cover | mis",
    )
    ablation.add_argument(
        "--problem",
        default=None,
        help="for eta/epsilon sweeps: matching|set-cover / set-cover|b-matching",
    )
    ablation.add_argument("--json", action="store_true")
    return parser


def _record_to_json(record: ExperimentRecord) -> dict[str, object]:
    return {
        "experiment": record.experiment,
        "valid": record.valid,
        "parameters": record.parameters,
        "metrics": record.metrics,
        "bounds": record.bounds,
        "notes": record.notes,
    }


def _print_records(records: Sequence[ExperimentRecord], as_json: bool) -> None:
    if as_json:
        print(json.dumps([_record_to_json(r) for r in records], indent=2, default=str))
        return
    rows = []
    metric_keys: list[str] = []
    for record in records:
        for key in record.metrics:
            if key not in metric_keys:
                metric_keys.append(key)
    headers = ["experiment", "valid"] + [f"param:{k}" for k in records[0].parameters] + metric_keys
    for record in records:
        row: list[object] = [record.experiment, "OK" if record.valid else "INVALID"]
        row.extend(record.parameters.get(k, "") for k in records[0].parameters)
        row.extend(record.metrics.get(k, "") for k in metric_keys)
        rows.append(row)
    print(format_table(headers, rows))


def _run_figure1(args: argparse.Namespace) -> int:
    names = args.only or list(FIGURE1_EXPERIMENTS)
    records = []
    for name in names:
        experiment = FIGURE1_EXPERIMENTS[name]
        trials = run_trials(lambda rng: experiment(rng), seed=args.seed, trials=args.trials)
        records.append(aggregate_records(trials))
    _print_records(records, args.json)
    return 0 if all(r.valid for r in records) else 1


def _run_single(args: argparse.Namespace) -> int:
    experiment = FIGURE1_EXPERIMENTS[args.name]
    trials = run_trials(lambda rng: experiment(rng), seed=args.seed, trials=args.trials)
    record = aggregate_records(trials)
    if args.json:
        print(json.dumps(_record_to_json(record), indent=2, default=str))
    else:
        print(f"experiment: {record.experiment}  (valid: {record.valid})")
        print(f"parameters: {record.parameters}")
        rows = [[k, v, record.bounds.get(k, "")] for k, v in sorted(record.metrics.items())]
        print(format_table(["metric", "measured", "theoretical bound"], rows))
    return 0 if record.valid else 1


def _run_ablation(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.sweep == "mu":
        records = sweep_mu(rng, algorithm=args.algorithm)
    elif args.sweep == "eta":
        records = sweep_sample_budget(rng, problem=args.problem or "matching")
    else:
        records = sweep_epsilon(rng, problem=args.problem or "set-cover")
    _print_records(records, args.json)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "figure1":
        return _run_figure1(args)
    if args.command == "experiment":
        return _run_single(args)
    if args.command == "ablation":
        return _run_ablation(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
