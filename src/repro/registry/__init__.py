"""Unified algorithm registry + the public :func:`repro.solve` facade.

* :mod:`repro.registry.spec` — :class:`AlgorithmSpec` and the
  :func:`register_algorithm` decorator: every paper algorithm is declared
  once (name, aliases, workload kind, validated parameters, theory-bounds
  hook, baselines, solver callable) and every dispatch surface resolves
  through that single declaration.
* :mod:`repro.registry.solve` — the :func:`solve` facade and the shared
  request/response model: request validation, the request → sweep-point
  mapping, and canonical response rendering, used identically by the
  library, the experiment drivers, the CLI, and the HTTP service.

See ``docs/API.md`` for the public API and the "add an algorithm in one
file" extension guide.
"""

from .solve import (
    REQUEST_FIELDS,
    SolveRequest,
    SolveResult,
    build_request,
    canonical_response,
    request_point,
    request_signature,
    response_payload,
    solve,
)
from .spec import (
    AlgorithmSpec,
    DeprecatedMapping,
    RegistryError,
    UnknownAlgorithmError,
    UnknownParameterError,
    algorithm_names,
    experiment_names,
    get_algorithm,
    iter_algorithms,
    known_algorithm_names,
    register_algorithm,
)

__all__ = [
    "AlgorithmSpec",
    "DeprecatedMapping",
    "REQUEST_FIELDS",
    "RegistryError",
    "SolveRequest",
    "SolveResult",
    "UnknownAlgorithmError",
    "UnknownParameterError",
    "algorithm_names",
    "build_request",
    "canonical_response",
    "experiment_names",
    "get_algorithm",
    "iter_algorithms",
    "known_algorithm_names",
    "register_algorithm",
    "request_point",
    "request_signature",
    "response_payload",
    "solve",
]
