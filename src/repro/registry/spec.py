"""The algorithm registry: one authoritative catalogue of every solver.

Before this package existed the paper's algorithms were reachable through
three divergent dispatch surfaces — the ``FIGURE1_EXPERIMENTS`` mapping in
:mod:`repro.experiments.figure1`, the ``ALGORITHMS`` string-remapping layer
in :mod:`repro.service.api`, and hand-maintained per-driver CLI flags — so
adding one algorithm meant editing all three in lockstep.  Now every
algorithm is declared exactly once, by decorating its module-level
experiment function with :func:`register_algorithm`::

    @register_algorithm(
        "matching",
        experiment="fig1-matching",
        kind="graph",
        aliases=("fig1-matching",),
        guarantee="2-approximation",
        theorem="Theorem 5.6",
        bounds=theory.matching_bound,
        baselines=("greedy-matching", "filtering-matching", "exact-matching"),
    )
    def matching_experiment(rng, *, n=130, c=0.45, mu=0.25, ...): ...

and every dispatch surface — :func:`repro.solve`, the Figure-1/ablation
drivers, ``repro solve`` / ``repro algorithms`` on the CLI, and the
``/solve`` + ``/algorithms`` routes of ``repro serve`` — resolves names,
validates parameters, and builds sweep points through the resulting
:class:`AlgorithmSpec`.

The accepted keyword parameters (and their defaults) are derived from the
solver's signature, so the spec can never drift from the function it
describes; the solver itself stays a plain module-level callable, which is
what keeps sweep points picklable and cache signatures stable.
"""

from __future__ import annotations

import inspect
import warnings
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping

from ..backends import SweepPoint

__all__ = [
    "AlgorithmSpec",
    "DeprecatedMapping",
    "RegistryError",
    "UnknownAlgorithmError",
    "UnknownParameterError",
    "algorithm_names",
    "experiment_names",
    "get_algorithm",
    "iter_algorithms",
    "known_algorithm_names",
    "register_algorithm",
]


class RegistryError(ValueError):
    """A registry-level failure (unknown name, bad parameter, bad spec)."""


class UnknownAlgorithmError(RegistryError):
    """An algorithm name that resolves to nothing in the registry.

    ``known`` carries the full, de-duplicated list of accepted names
    (canonical names and aliases alike) so callers can render a helpful
    message without re-listing names that appear on both surfaces.
    """

    def __init__(self, name: str, known: list[str]) -> None:
        self.name = name
        self.known = list(known)
        super().__init__(f"unknown algorithm {name!r}; choose one of {self.known}")


class UnknownParameterError(RegistryError):
    """A solver parameter the algorithm's signature does not accept."""

    def __init__(self, algorithm: str, parameter: str, accepted: list[str]) -> None:
        self.algorithm = algorithm
        self.parameter = parameter
        self.accepted = sorted(accepted)
        super().__init__(
            f"unknown parameter {parameter!r} for algorithm {algorithm!r}; "
            f"accepted: {self.accepted}"
        )


def _solver_params(fn: Callable[..., Any]) -> dict[str, Any]:
    """Accepted keyword parameters (name → default) from a solver signature.

    Only keyword-only parameters count (the leading positional is the trial
    RNG); ``scenario`` is excluded — it travels in the request's own field,
    never through ``params``.
    """
    params: dict[str, Any] = {}
    for name, parameter in inspect.signature(fn).parameters.items():
        if parameter.kind != inspect.Parameter.KEYWORD_ONLY or name == "scenario":
            continue
        default = parameter.default
        params[name] = None if default is inspect.Parameter.empty else default
    return params


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: name, solver, workload kind, and metadata.

    Attributes
    ----------
    name:
        Canonical public name (what ``repro.solve`` and the service accept).
    experiment:
        The Figure-1 row / sweep-point name.  This is the cache-key identity
        of the algorithm, so it must stay stable across refactors.
    solver:
        Module-level callable ``fn(rng, **params)`` returning one
        :class:`~repro.experiments.harness.ExperimentRecord` (module-level
        so points pickle to worker processes and cache signatures resolve).
    kind:
        Workload kind the solver consumes: ``"graph"`` or ``"setcover"``.
    aliases:
        Additional accepted names (e.g. the raw ``fig1-*`` row name).
    guarantee:
        Human-readable approximation guarantee (e.g. ``"2-approximation"``).
    theorem:
        The paper theorem the guarantee comes from.
    bounds:
        The :mod:`repro.analysis.bounds` hook producing the row's
        :class:`~repro.analysis.bounds.TheoremBound`.
    baselines:
        Names of the comparison baselines the experiment records.
    description:
        One-line summary (defaults to the solver docstring's first line).
    params:
        Accepted keyword parameters and their defaults, derived from the
        solver signature.
    """

    name: str
    experiment: str
    solver: Callable[..., Any]
    kind: str
    aliases: tuple[str, ...] = ()
    guarantee: str = ""
    theorem: str = ""
    bounds: Callable[..., Any] | None = None
    baselines: tuple[str, ...] = ()
    description: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)

    @property
    def all_names(self) -> tuple[str, ...]:
        """Every name this spec answers to (canonical name first)."""
        return (self.name, *self.aliases)

    def validate_params(
        self, params: Mapping[str, Any] | None, *, context: str | None = None
    ) -> dict[str, Any]:
        """Check ``params`` against the solver signature; returns a clean dict.

        ``context`` is the name to blame in error messages (defaults to the
        canonical name; the service passes the name the client actually
        used).  Raises :class:`UnknownParameterError` on any key the solver
        does not accept.
        """
        if params is None:
            return {}
        if not isinstance(params, MappingABC):
            raise RegistryError(
                f"'params' must be a mapping (JSON object), not {type(params).__name__}"
            )
        clean: dict[str, Any] = {}
        for key, value in params.items():
            if key not in self.params:
                raise UnknownParameterError(context or self.name, str(key), list(self.params))
            clean[str(key)] = value
        return clean

    def listing_payload(self) -> dict[str, Any]:
        """The JSON-ready listing entry for this algorithm.

        The single rendering used by both ``repro algorithms --json`` and
        the service's ``GET /algorithms`` route, so the two listings can
        never drift apart.
        """
        from ..backends.base import _jsonable

        return {
            "experiment": self.experiment,
            "kind": self.kind,
            "aliases": list(self.aliases),
            "guarantee": self.guarantee,
            "theorem": self.theorem,
            "params": _jsonable(dict(self.params)),
            "baselines": list(self.baselines),
            "description": self.description,
        }

    def build_point(
        self,
        *,
        params: Mapping[str, Any] | None = None,
        scenario: str | None = None,
        seed: int | tuple[int, ...] = 0,
        trials: int = 1,
    ) -> SweepPoint:
        """The :class:`~repro.backends.SweepPoint` one evaluation maps onto.

        This is the single place a point is ever constructed from an
        algorithm, so the cache-key identity (experiment name, solver path,
        kwargs, seed, trials) is defined exactly once for the library
        facade, the experiment drivers, the CLI, and the service.
        """
        kwargs = dict(self.validate_params(params))
        if scenario is not None:
            kwargs["scenario"] = scenario
        return SweepPoint(
            experiment=self.experiment,
            fn=self.solver,
            kwargs=kwargs,
            seed=seed,
            trials=max(1, int(trials)),
        )


#: Canonical name → spec, in registration order (which fixes the Figure-1
#: row order and therefore per-row seeds — append, never reorder).
_REGISTRY: dict[str, AlgorithmSpec] = {}

#: Every accepted name (canonical or alias) → canonical name.
_NAMES: dict[str, str] = {}

_POPULATED = False
_POPULATING = False


def _populate() -> None:
    """Import the modules whose decorators fill the registry (idempotent).

    The success flag is only set after the import completes, so a failed
    registration import surfaces its real error again on the next call
    instead of leaving a silently empty registry; the in-progress guard
    stops re-entry while the import is running.
    """
    global _POPULATED, _POPULATING
    if _POPULATED or _POPULATING:
        return
    _POPULATING = True
    try:
        from ..experiments import figure1  # noqa: F401  (registration side effect)

        _POPULATED = True
    finally:
        _POPULATING = False


def register_algorithm(
    name: str,
    *,
    kind: str,
    experiment: str | None = None,
    aliases: tuple[str, ...] | list[str] = (),
    guarantee: str = "",
    theorem: str = "",
    bounds: Callable[..., Any] | None = None,
    baselines: tuple[str, ...] | list[str] = (),
    description: str | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class the decorated solver function into the algorithm registry.

    The decorator returns the function unchanged — registration attaches
    metadata *about* the solver without wrapping it, so its import path
    (the cache-key identity) and its pickling behaviour are untouched.
    """
    if kind not in ("graph", "setcover"):
        raise RegistryError(f"kind must be 'graph' or 'setcover', not {kind!r}")

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        doc = description
        if doc is None:
            docstring = inspect.getdoc(fn) or ""
            doc = docstring.splitlines()[0] if docstring else ""
        spec = AlgorithmSpec(
            name=name,
            experiment=experiment or name,
            solver=fn,
            kind=kind,
            aliases=tuple(aliases),
            guarantee=guarantee,
            theorem=theorem,
            bounds=bounds,
            baselines=tuple(baselines),
            description=doc,
            params=MappingProxyType(_solver_params(fn)),
        )
        for key in spec.all_names:
            owner = _NAMES.get(key)
            if owner is not None and owner != name:
                raise RegistryError(
                    f"algorithm name {key!r} is already registered by {owner!r}"
                )
        for other in _REGISTRY.values():
            # The experiment name is the cache-key identity and the
            # Figure-1 row key — two specs must never share one.
            if other.name != name and other.experiment == spec.experiment:
                raise RegistryError(
                    f"experiment {spec.experiment!r} is already registered by "
                    f"{other.name!r}"
                )
        _REGISTRY[name] = spec
        for key in spec.all_names:
            _NAMES[key] = name
        return fn

    return decorator


def get_algorithm(name: str) -> AlgorithmSpec:
    """Resolve a canonical name or alias to its spec.

    Raises :class:`UnknownAlgorithmError` (with the de-duplicated list of
    every accepted name) when nothing matches.
    """
    _populate()
    canonical = _NAMES.get(name)
    if canonical is None:
        raise UnknownAlgorithmError(name, known_algorithm_names())
    return _REGISTRY[canonical]


def iter_algorithms() -> Iterator[AlgorithmSpec]:
    """All registered specs, in registration (Figure-1 row) order."""
    _populate()
    return iter(list(_REGISTRY.values()))


def algorithm_names() -> list[str]:
    """Sorted canonical algorithm names."""
    _populate()
    return sorted(_REGISTRY)


def experiment_names() -> list[str]:
    """The experiment (Figure-1 row) names, in registration order."""
    _populate()
    return [spec.experiment for spec in _REGISTRY.values()]


def known_algorithm_names() -> list[str]:
    """Every accepted name — canonical and alias — sorted, de-duplicated."""
    _populate()
    return sorted(_NAMES)


class DeprecatedMapping(MappingABC):
    """A read-only live mapping view over the registry that warns on use.

    Legacy module-level dicts (``FIGURE1_EXPERIMENTS``,
    ``service.api.ALGORITHMS``) are replaced by instances of this class so
    existing callers keep working — iteration, lookup, ``len`` and
    containment all behave like the old dict — while a
    :class:`DeprecationWarning` points them at the registry.
    """

    def __init__(self, name: str, build: Callable[[], dict[str, Any]], hint: str) -> None:
        self._name = name
        self._build = build
        self._hint = hint

    def _mapping(self) -> dict[str, Any]:
        # The default warning filter de-duplicates the display per call
        # site, so legacy loops do not spam; tests recording with
        # ``simplefilter("always")`` still see every emission.
        warnings.warn(
            f"{self._name} is deprecated; {self._hint}",
            DeprecationWarning,
            stacklevel=3,
        )
        _populate()
        return self._build()

    def __getitem__(self, key: str) -> Any:
        return self._mapping()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._mapping())

    def __len__(self) -> int:
        return len(self._mapping())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<deprecated {self._name}; {self._hint}>"
