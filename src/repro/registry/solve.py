"""``repro.solve()`` — the single public dispatch path for every surface.

A solve is described by ``(algorithm, scenario, params, seed, trials)``.
:func:`build_request` validates that tuple against the registry into a
frozen :class:`SolveRequest`; :func:`request_point` maps the request onto
the one :class:`~repro.backends.SweepPoint` it denotes (the cache-key
identity); :func:`solve` executes it through
:func:`~repro.backends.run_sweep` and wraps the outcome in a typed
:class:`SolveResult`.

Canonical rendering lives here too: :func:`canonical_response` turns a
request and its records into canonical JSON bytes (sorted keys, fixed
separators), so the response is a pure function of the request.  The
library facade, the ``repro solve`` CLI subcommand, and the ``/solve``
route of ``repro serve`` all render through this one function — which is
what makes the three surfaces byte-identical for the same request.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from ..backends import Backend, ResultCache, run_sweep
from ..backends.base import SweepPoint, _jsonable, point_signature
from ..backends.cache import record_to_payload
from ..datasets import canonical_scenario_spec, resolve_scenario
from .spec import AlgorithmSpec, RegistryError, get_algorithm

__all__ = [
    "REQUEST_FIELDS",
    "SolveRequest",
    "SolveResult",
    "build_request",
    "canonical_response",
    "request_point",
    "request_signature",
    "response_payload",
    "solve",
]


@dataclass(frozen=True)
class SolveRequest:
    """A validated solve request (``experiment`` is the resolved row name).

    ``algorithm`` keeps the name the caller used (canonical or alias) so a
    rendered response echoes the request verbatim; ``experiment`` is the
    registry's resolved sweep-point name.
    """

    algorithm: str
    experiment: str
    scenario: str | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    trials: int = 1


#: The fields a solve request may carry, derived from the request dataclass
#: itself (``experiment`` is an output of resolution, not an input).
REQUEST_FIELDS = frozenset(f.name for f in fields(SolveRequest)) - {"experiment"}


def _validate_scenario(spec: AlgorithmSpec, scenario: str | None) -> str | None:
    """Resolve + kind-check a scenario spec; returns its canonical form."""
    if scenario is None:
        return None
    if not isinstance(scenario, str) or not scenario:
        raise RegistryError("'scenario' must be a non-empty string")
    resolved = resolve_scenario(scenario)
    canonical = canonical_scenario_spec(scenario)
    if resolved.kind != spec.kind:
        raise RegistryError(
            f"scenario {scenario!r} provides a {resolved.kind} workload but "
            f"{spec.experiment!r} needs {spec.kind}"
        )
    return canonical


def build_request(
    algorithm: str,
    *,
    scenario: str | None = None,
    params: Mapping[str, Any] | None = None,
    seed: int = 0,
    trials: int = 1,
) -> SolveRequest:
    """Validate one solve description against the registry.

    Raises :class:`~repro.registry.spec.RegistryError` subclasses on an
    unknown algorithm or parameter, a malformed seed/trial count, or an
    incompatible scenario (``ValueError``/``OSError`` propagate from
    scenario resolution itself).
    """
    if not isinstance(algorithm, str):
        raise RegistryError("'algorithm' must be a string")
    spec = get_algorithm(algorithm)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise RegistryError("'seed' must be an integer")
    if isinstance(trials, bool) or not isinstance(trials, int) or trials < 1:
        raise RegistryError("'trials' must be a positive integer")
    clean = spec.validate_params(params, context=algorithm)
    return SolveRequest(
        algorithm=algorithm,
        experiment=spec.experiment,
        scenario=_validate_scenario(spec, scenario),
        params=clean,
        seed=seed,
        trials=trials,
    )


def request_point(request: SolveRequest) -> SweepPoint:
    """The :class:`SweepPoint` a request maps onto (the cache-key identity).

    The point's seed is the request seed verbatim, so the service, a cached
    replay, a CLI invocation, and a direct library call on the same request
    share one signature — and therefore one result.
    """
    # Resolve via the requested name: the experiment name is only a lookup
    # key when the spec registered it as an alias, which is not required.
    return get_algorithm(request.algorithm).build_point(
        params=request.params,
        scenario=request.scenario,
        seed=request.seed,
        trials=request.trials,
    )


def request_signature(request: SolveRequest) -> str:
    """Canonical identity of a request (its point's signature)."""
    return point_signature(request_point(request))


def response_payload(request: SolveRequest, records: list[Any]) -> dict[str, Any]:
    """The JSON-ready response payload of a request and its records."""
    return {
        "algorithm": request.algorithm,
        "experiment": request.experiment,
        "scenario": request.scenario,
        "params": _jsonable(dict(request.params)),
        "seed": request.seed,
        "trials": request.trials,
        "records": [record_to_payload(record) for record in records],
    }


def canonical_response(request: SolveRequest, records: list[Any]) -> bytes:
    """Render a solve response as canonical JSON bytes.

    Sorted keys and fixed separators make the bytes a pure function of the
    request and its records.  Whether a result was cached is deliberately
    *not* part of the payload, so cached replays stay byte-identical to
    fresh computations.
    """
    return json.dumps(
        response_payload(request, records), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


@dataclass
class SolveResult:
    """The typed outcome of one :func:`solve` call.

    ``records`` holds one :class:`~repro.experiments.harness.ExperimentRecord`
    per trial: the solution's objective value and measured rounds/space live
    in ``record.metrics``, the theorem's guarantee in ``record.bounds``, and
    the independent certificate check's verdict in ``record.valid``.
    """

    request: SolveRequest
    records: list[Any]
    cached: bool = False

    @property
    def algorithm(self) -> str:
        return self.request.algorithm

    @property
    def experiment(self) -> str:
        return self.request.experiment

    @property
    def scenario(self) -> str | None:
        return self.request.scenario

    @property
    def params(self) -> Mapping[str, Any]:
        return self.request.params

    @property
    def seed(self) -> int:
        return self.request.seed

    @property
    def trials(self) -> int:
        return self.request.trials

    @property
    def record(self) -> Any:
        """The first (often only) trial record."""
        return self.records[0]

    @property
    def metrics(self) -> Mapping[str, float]:
        """Measured quantities of the first trial (objective, rounds, space)."""
        return self.record.metrics

    @property
    def bounds(self) -> Mapping[str, float]:
        """The theorem's guarantee for the workload that actually ran."""
        return self.record.bounds

    @property
    def valid(self) -> bool:
        """Did every trial pass its independent certificate check?"""
        return all(getattr(record, "valid", True) for record in self.records)

    def payload(self) -> dict[str, Any]:
        """The response as a JSON-ready dict."""
        return response_payload(self.request, self.records)

    def canonical_json(self) -> bytes:
        """The response as canonical bytes — identical across all surfaces."""
        return canonical_response(self.request, self.records)


def solve(
    algorithm: str,
    scenario: str | None = None,
    *,
    params: Mapping[str, Any] | None = None,
    seed: int = 0,
    trials: int = 1,
    backend: Backend | str | None = None,
    jobs: int | None = None,
    workers: list[str] | None = None,
    cache: ResultCache | str | None = None,
) -> SolveResult:
    """Solve one problem instance with a registered algorithm.

    Parameters
    ----------
    algorithm:
        Canonical name or alias (see ``repro algorithms`` or
        :func:`repro.registry.algorithm_names`).
    scenario:
        Optional workload: a named scenario (``"powerlaw-dense"``) or an
        ingested dataset (``"file:<path>"``); default is the algorithm's
        built-in generator at its declared parameters.
    params:
        Keyword overrides for the solver (validated against the registry —
        an unknown key raises a clear error naming the accepted ones).
    seed / trials:
        The point's entropy and repetition count (trial ``i`` uses the
        ``i``-th spawned child of ``seed``).
    backend / jobs / workers / cache:
        Execution strategy, forwarded to :func:`~repro.backends.run_sweep`
        (``workers`` is the ``host:port`` list of the ``"distributed"``
        backend).  Results are backend-independent by construction.

    Returns a :class:`SolveResult`; ``result.canonical_json()`` is
    byte-identical to the ``repro solve`` CLI output and a ``repro serve``
    response body for the same ``(algorithm, scenario, params, seed,
    trials)``.
    """
    request = build_request(
        algorithm, scenario=scenario, params=params, seed=seed, trials=trials
    )
    [result] = run_sweep(
        [request_point(request)], backend=backend, jobs=jobs, workers=workers, cache=cache
    )
    return SolveResult(request=request, records=list(result.records), cached=result.cached)
