"""Service-side counters surfaced by the ``/metrics`` endpoint.

Tracks exactly what the ROADMAP's serving story needs to be observable:
request/error counts, micro-batch sizes, result-cache hit rates, the
dataset instance-LRU hit rates (from :mod:`repro.datasets.scenarios`),
per-algorithm latency, and — the SLO signals — streaming latency
histograms (:class:`~repro.service.histogram.LatencyHistogram`) answering
p50/p90/p99/p999 globally and per algorithm, plus admission-control
counters (429 rejections, deadline timeouts).  All updates take the
internal lock — request handling runs on the event loop while batches
execute in a worker thread.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..datasets import instance_cache_stats
from .histogram import LatencyHistogram

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Thread-safe counters for one :class:`~repro.service.server.SolverService`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self.requests_total = 0
        self.responses_total = 0
        self.errors_total = 0
        self.rejected_total = 0
        self.timeouts_total = 0
        self.batches_total = 0
        self.batched_points_total = 0
        self.max_batch_size = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.latency = LatencyHistogram()
        self._algorithms: dict[str, dict[str, float]] = {}
        self._algorithm_latency: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_request(self) -> None:
        with self._lock:
            self.requests_total += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors_total += 1

    def record_rejected(self) -> None:
        """One request shed with a 429 by admission control."""
        with self._lock:
            self.rejected_total += 1

    def record_timeout(self) -> None:
        """One request that missed its deadline (504)."""
        with self._lock:
            self.timeouts_total += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches_total += 1
            self.batched_points_total += size
            self.max_batch_size = max(self.max_batch_size, size)

    def record_response(self, algorithm: str, seconds: float, *, cached: bool) -> None:
        with self._lock:
            self.responses_total += 1
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self.latency.record(max(0.0, seconds))
            histogram = self._algorithm_latency.get(algorithm)
            if histogram is None:
                histogram = self._algorithm_latency[algorithm] = LatencyHistogram()
            histogram.record(max(0.0, seconds))
            stats = self._algorithms.setdefault(
                algorithm,
                {"count": 0.0, "seconds_total": 0.0, "seconds_min": float("inf"), "seconds_max": 0.0},
            )
            stats["count"] += 1
            stats["seconds_total"] += seconds
            stats["seconds_min"] = min(stats["seconds_min"], seconds)
            stats["seconds_max"] = max(stats["seconds_max"], seconds)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of every counter (the ``/metrics`` body)."""
        with self._lock:
            batches = self.batches_total
            cache_lookups = self.cache_hits + self.cache_misses
            algorithms = {
                name: {
                    "count": int(stats["count"]),
                    "seconds_total": stats["seconds_total"],
                    "seconds_mean": stats["seconds_total"] / stats["count"],
                    "seconds_min": stats["seconds_min"],
                    "seconds_max": stats["seconds_max"],
                    "latency": self._algorithm_latency[name].snapshot(),
                }
                for name, stats in sorted(self._algorithms.items())
            }
            return {
                "uptime_seconds": time.time() - self._started,
                "requests_total": self.requests_total,
                "responses_total": self.responses_total,
                "errors_total": self.errors_total,
                "rejected_total": self.rejected_total,
                "deadline_timeouts_total": self.timeouts_total,
                "batches_total": batches,
                "batched_points_total": self.batched_points_total,
                "batch_size_mean": (self.batched_points_total / batches) if batches else 0.0,
                "batch_size_max": self.max_batch_size,
                "latency": self.latency.snapshot(),
                "result_cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (self.cache_hits / cache_lookups) if cache_lookups else 0.0,
                },
                "instance_cache": instance_cache_stats(),
                "algorithms": algorithms,
            }
