"""Micro-batching: coalesce concurrent solve requests into one sweep.

Concurrent requests land on an asyncio queue; a single dispatcher task
drains it into batches — a batch closes when it reaches ``max_batch``
points or ``max_wait_ms`` after its first point arrived — and executes
each batch through :func:`~repro.backends.run_sweep` in a worker thread.
The whole frontier therefore reaches the backend in one call, exactly like
an experiment sweep: the ``batch`` backend memoises duplicate points
(identical concurrent requests compute once), ``mp`` fans distinct points
out across processes, and a shared :class:`~repro.backends.ResultCache`
serves idempotent replays without recomputing.

Because every backend is required to produce results identical to
``execute_point``, batching changes *where and when* a request computes,
never *what* it answers — the byte-identity guarantee of
:func:`repro.service.api.solve_direct` survives batching untouched.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Sequence

from ..backends import Backend, PointResult, ResultCache, SweepPoint, run_sweep

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce submitted points into batches executed via ``run_sweep``."""

    def __init__(
        self,
        *,
        backend: Backend | str | None = "batch",
        jobs: int | None = None,
        cache: ResultCache | str | None = None,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        on_batch: Callable[[int], None] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.backend = backend
        self.jobs = jobs
        self.cache = cache
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.on_batch = on_batch
        self._queue: asyncio.Queue[tuple[SweepPoint, asyncio.Future[PointResult]]] = (
            asyncio.Queue()
        )
        self._dispatcher: asyncio.Task[None] | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the dispatcher task on the running event loop."""
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="repro-service-batcher"
            )

    async def aclose(self) -> None:
        """Cancel the dispatcher and fail any undelivered submissions."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while not self._queue.empty():
            _, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(RuntimeError("service shut down"))

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(self, point: SweepPoint) -> PointResult:
        """Queue one point and await its result."""
        self.start()
        future: asyncio.Future[PointResult] = asyncio.get_running_loop().create_future()
        await self._queue.put((point, future))
        return await future

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _collect_batch(
        self,
    ) -> list[tuple[SweepPoint, asyncio.Future[PointResult]]]:
        """Block for the first point, then drain until size or time is up."""
        loop = asyncio.get_running_loop()
        first = await self._queue.get()
        batch = [first]
        deadline = loop.time() + self.max_wait
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Past the deadline: take only what is already queued.
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
        return batch

    def _execute(self, points: Sequence[SweepPoint]) -> list[PointResult]:
        return run_sweep(
            points, backend=self.backend, jobs=self.jobs, cache=self.cache
        )

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            if self.on_batch is not None:
                self.on_batch(len(batch))
            points = [point for point, _ in batch]
            try:
                results = await loop.run_in_executor(None, self._execute, points)
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                if isinstance(exc, asyncio.CancelledError):
                    for _, future in batch:
                        if not future.done():
                            future.set_exception(RuntimeError("service shut down"))
                    raise
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future), result in zip(batch, results):
                if not future.done():
                    future.set_result(result)
