"""Micro-batching: coalesce concurrent solve requests into one sweep.

Concurrent requests land on an asyncio queue; a single dispatcher task
drains it into batches — a batch closes when it reaches the batch-size
limit or the wait window after its first point arrived — and executes
each batch through :func:`~repro.backends.run_sweep` in a worker thread.
The whole frontier therefore reaches the backend in one call, exactly like
an experiment sweep: the ``batch`` backend memoises duplicate points
(identical concurrent requests compute once), ``mp`` fans distinct points
out across processes, and a shared :class:`~repro.backends.ResultCache`
serves idempotent replays without recomputing.

Because every backend is required to produce results identical to
``execute_point``, batching changes *where and when* a request computes,
never *what* it answers — the byte-identity guarantee of
:func:`repro.service.api.solve_direct` survives batching untouched.

Production hardening (see ``docs/SERVICE.md``):

* **Adaptive sizing** — pass an :class:`~repro.service.adaptive.
  AdaptiveBatchPolicy` and the batch size / wait window become feedback-
  controlled: the window shrinks when request p99 drifts above target and
  batches grow under saturation.  Without a policy the configured
  ``max_batch`` / ``max_wait_ms`` are fixed, as before.
* **Fault isolation** — when a batch's sweep raises, the batch is retried
  point-by-point so one poisoned request fails alone instead of failing
  every stranger sharing its batch.
* **Callback isolation** — an ``on_batch`` observer that raises is
  swallowed; instrumentation must never kill the dispatch loop.
* **Deterministic testing** — the ``clock`` hook replaces the loop clock
  in every wait-window computation, so tests drive the window with a fake
  clock instead of real sleeps.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Sequence

from ..backends import Backend, PointResult, ResultCache, SweepPoint, run_sweep
from .adaptive import AdaptiveBatchPolicy

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce submitted points into batches executed via ``run_sweep``."""

    def __init__(
        self,
        *,
        backend: Backend | str | None = "batch",
        jobs: int | None = None,
        cache: ResultCache | str | None = None,
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        on_batch: Callable[[int], None] | None = None,
        policy: AdaptiveBatchPolicy | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.backend = backend
        self.jobs = jobs
        self.cache = cache
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.on_batch = on_batch
        self.policy = policy
        self._clock = clock
        self._queue: asyncio.Queue[tuple[SweepPoint, asyncio.Future[PointResult], float]] = (
            asyncio.Queue()
        )
        self._dispatcher: asyncio.Task[None] | None = None
        self._inflight = 0
        self._closing = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_event_loop().time()

    def queue_depth(self) -> int:
        """Requests waiting or executing right now (admission-control signal)."""
        return self._queue.qsize() + self._inflight

    def limits(self) -> tuple[int, float]:
        """The (batch size, wait seconds) the next batch will be collected with."""
        if self.policy is not None:
            return (
                max(1, min(self.policy.batch_size, self.max_batch)),
                self.policy.wait_seconds,
            )
        return self.max_batch, self.max_wait

    def stats(self) -> dict[str, object]:
        """JSON-ready batcher state for ``/metrics``."""
        size, wait = self.limits()
        payload: dict[str, object] = {
            "queue_depth": self.queue_depth(),
            "batch_size_limit": size,
            "wait_seconds": wait,
            "adaptive": self.policy is not None,
        }
        if self.policy is not None:
            payload["policy"] = self.policy.snapshot()
        return payload

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the dispatcher task on the running event loop."""
        if self._dispatcher is None or self._dispatcher.done():
            self._closing = False
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="repro-service-batcher"
            )

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait until no request is queued or executing.

        The graceful-shutdown half of :meth:`aclose`: where ``aclose``
        cancels and fails undelivered submissions, ``drain`` lets them
        finish.  Returns ``False`` if ``timeout`` elapsed first.
        """
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while self.queue_depth() > 0:
            if deadline is not None and loop.time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    async def aclose(self) -> None:
        """Cancel the dispatcher and fail any undelivered submissions."""
        self._closing = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while not self._queue.empty():
            _, future, _ = self._queue.get_nowait()
            if not future.done():
                future.set_exception(RuntimeError("service shut down"))

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(self, point: SweepPoint) -> PointResult:
        """Queue one point and await its result."""
        if self._closing:
            raise RuntimeError("service shut down")
        self.start()
        future: asyncio.Future[PointResult] = asyncio.get_running_loop().create_future()
        await self._queue.put((point, future, self._now()))
        return await future

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _collect_batch(
        self,
    ) -> list[tuple[SweepPoint, asyncio.Future[PointResult], float]]:
        """Block for the first point, then drain until size or time is up."""
        first = await self._queue.get()
        batch = [first]
        size_limit, wait = self.limits()
        deadline = self._now() + wait
        while len(batch) < size_limit:
            remaining = deadline - self._now()
            if remaining <= 0:
                # Past the deadline: take only what is already queued.
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
        return batch

    def _execute(self, points: Sequence[SweepPoint]) -> list[PointResult | BaseException]:
        """Run one batch; on failure, isolate it to the offending point(s).

        A request must never fail because a *stranger* sharing its batch
        raised: when the whole-batch sweep raises, each point re-runs in
        its own single-point sweep and only the points that still raise
        carry an exception back to their callers.
        """
        try:
            return list(
                run_sweep(points, backend=self.backend, jobs=self.jobs, cache=self.cache)
            )
        except BaseException:  # noqa: BLE001 - isolated per point below
            results: list[PointResult | BaseException] = []
            for point in points:
                try:
                    [result] = run_sweep(
                        [point], backend=self.backend, jobs=self.jobs, cache=self.cache
                    )
                    results.append(result)
                except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                    results.append(exc)
            return results

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect_batch()
            self._inflight = len(batch)
            if self.on_batch is not None:
                try:
                    self.on_batch(len(batch))
                except Exception:  # noqa: BLE001 - observers must not kill dispatch
                    pass
            points = [point for point, _, _ in batch]
            try:
                results = await loop.run_in_executor(None, self._execute, points)
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                if isinstance(exc, asyncio.CancelledError):
                    for _, future, _ in batch:
                        if not future.done():
                            future.set_exception(RuntimeError("service shut down"))
                    self._inflight = 0
                    raise
                results = [exc] * len(batch)
            finished = self._now()
            depth = self._queue.qsize()
            for (_, future, enqueued), result in zip(batch, results):
                if self.policy is not None:
                    self.policy.observe(max(0.0, finished - enqueued), depth)
                if future.done():
                    continue
                if isinstance(result, BaseException):
                    future.set_exception(result)
                else:
                    future.set_result(result)
            self._inflight = 0
