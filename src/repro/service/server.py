"""The always-on solver service: a stdlib-only asyncio HTTP server.

``repro serve`` binds this server; it speaks just enough HTTP/1.1
(keep-alive, ``Content-Length`` bodies) for load generators and ordinary
HTTP clients, with zero dependencies beyond the standard library.

Routes
------
``POST /solve``
    One JSON solve request (see :mod:`repro.service.api`).  Concurrent
    requests are micro-batched through
    :class:`~repro.service.batcher.MicroBatcher` into a single
    :func:`~repro.backends.run_sweep` call; the response body is canonical
    JSON, byte-identical to :func:`~repro.service.api.solve_direct` for the
    same request.  The ``X-Repro-Cache`` header says whether the result was
    replayed from the :class:`~repro.backends.ResultCache`.
``GET /metrics``
    Request counts, batch sizes, cache hit rates, per-algorithm latency.
``GET /healthz``
    Liveness probe.
``GET /algorithms`` / ``GET /scenarios``
    The service's algorithm registry and workload scenario registry.

Worker mode (``repro worker``, ``worker=True``) adds the distributed
protocol's ``POST /register`` / ``/pull`` / ``/result`` endpoints backed by
a :class:`~repro.distributed.WorkerState`, and a ``distributed`` section in
``/metrics``; see :mod:`repro.distributed` and ``docs/DISTRIBUTED.md``.

``repro serve`` and ``repro worker`` shut down gracefully on SIGTERM (and
SIGINT): the listener closes, in-flight requests and the queued batcher
work drain, and only then does the process exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Any, Mapping

from ..backends import ResultCache
from ..datasets import SCENARIOS, configure_instance_cache
from ..registry import iter_algorithms
from .adaptive import AdaptiveBatchPolicy
from .api import (
    ServiceError,
    parse_solve_request,
    render_response,
    request_point,
)
from .batcher import MicroBatcher
from .metrics import ServiceMetrics

__all__ = ["SolverService", "ServiceHandle", "start_in_background", "serve"]

#: Largest accepted request body (a solve request is tiny; anything bigger
#: is a client error, not a workload).
_MAX_BODY = 1 << 20

_JSON = [("Content-Type", "application/json")]


class SolverService:
    """Request handling + batching + metrics for one service instance.

    Production-hardening knobs (see ``docs/SERVICE.md``):

    ``adaptive`` / ``target_p99_ms``
        Latency-aware micro-batch control (on by default): the wait window
        shrinks when the observed request p99 drifts above target, and
        batches grow under saturation.  ``adaptive=False`` restores the
        fixed ``(max_batch, batch_wait_ms)`` batcher.
    ``max_queue``
        Admission control: when this many requests are already queued or
        executing, new solves are shed with ``429 Too Many Requests`` and
        a ``Retry-After`` hint instead of queueing without bound.  ``0``
        disables shedding.
    ``deadline_ms``
        Default per-request deadline; a request still unanswered when it
        expires gets ``504``.  Clients may tighten (never loosen) it per
        request via the ``X-Repro-Deadline-Ms`` header.  ``None``/``0``
        means no deadline.
    ``read_timeout``
        Seconds a connection may take to deliver one full request (also
        the keep-alive idle timeout).  Slow-loris clients are answered
        with a best-effort ``408`` and dropped.
    """

    def __init__(
        self,
        *,
        backend: str = "batch",
        jobs: int | None = None,
        cache_dir: str | None = None,
        max_batch: int = 32,
        batch_wait_ms: float = 5.0,
        instance_cache: int = 64,
        adaptive: bool = True,
        target_p99_ms: float = 500.0,
        max_queue: int = 1024,
        deadline_ms: float | None = None,
        read_timeout: float = 30.0,
        worker: bool = False,
    ) -> None:
        self.metrics = ServiceMetrics()
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.worker_state = None
        if worker:
            from ..distributed.worker import WorkerState

            self.worker_state = WorkerState(
                backend=backend, jobs=jobs, cache=self.cache
            )
        self._active_requests = 0
        configure_instance_cache(instance_cache)
        self.max_queue = max(0, int(max_queue))
        self.deadline = (
            float(deadline_ms) / 1000.0 if deadline_ms else None
        )
        self.read_timeout = float(read_timeout)
        policy = None
        if adaptive:
            wait = float(batch_wait_ms) / 1000.0
            policy = AdaptiveBatchPolicy(
                target_p99=float(target_p99_ms) / 1000.0,
                min_batch=1,
                max_batch=int(max_batch),
                initial_batch=min(8, int(max_batch)),
                min_wait=0.0,
                max_wait=max(wait * 4.0, wait),
                initial_wait=wait,
            )
        self.batcher = MicroBatcher(
            backend=backend,
            jobs=jobs,
            cache=self.cache,
            max_batch=max_batch,
            max_wait_ms=batch_wait_ms,
            on_batch=self.metrics.record_batch,
            policy=policy,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def handle(
        self, method: str, path: str, body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        """Dispatch one request; returns ``(status, extra headers, body)``."""
        try:
            if path == "/solve":
                if method != "POST":
                    raise ServiceError("use POST for /solve", status=405)
                return await self._solve(body, headers or {})
            if path in ("/register", "/pull", "/result"):
                if self.worker_state is None:
                    raise ServiceError(
                        f"{path} needs worker mode; start this service with "
                        "`repro worker`",
                        status=404,
                    )
                if method != "POST":
                    raise ServiceError(f"use POST for {path}", status=405)
                return await self._worker_call(path, body)
            if method != "GET":
                raise ServiceError(f"use GET for {path}", status=405)
            if path == "/metrics":
                payload = self.metrics.snapshot()
                payload["batcher"] = self.batcher.stats()
                if self.worker_state is not None:
                    payload["distributed"] = self.worker_state.stats()
                return 200, _JSON, _dumps(payload)
            if path == "/healthz":
                return 200, _JSON, _dumps({"status": "ok"})
            if path == "/algorithms":
                listing = {
                    spec.name: spec.listing_payload() for spec in iter_algorithms()
                }
                return 200, _JSON, _dumps(listing)
            if path == "/scenarios":
                listing = {
                    name: {
                        "kind": scenario.kind,
                        "sized": scenario.sized,
                        "description": scenario.description,
                    }
                    for name, scenario in sorted(SCENARIOS.items())
                }
                return 200, _JSON, _dumps(listing)
            raise ServiceError(f"no such route {path!r}", status=404)
        except ServiceError as exc:
            self.metrics.record_error()
            return exc.status, _JSON, _dumps({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - a solve failure is a 500
            self.metrics.record_error()
            return 500, _JSON, _dumps({"error": f"{type(exc).__name__}: {exc}"})

    def _retry_after(self) -> int:
        """Seconds a shed client should back off: queue depth x recent p50."""
        p50 = self.metrics.latency.percentile(50.0)
        estimate = self.batcher.queue_depth() * max(p50, 0.001)
        return min(30, max(1, round(estimate)))

    def _deadline_for(self, headers: Mapping[str, str]) -> float | None:
        """Effective deadline: server default, tightened by the client header."""
        deadline = self.deadline
        raw = headers.get("x-repro-deadline-ms")
        if raw is not None:
            try:
                requested = float(raw) / 1000.0
            except ValueError:
                raise ServiceError("invalid X-Repro-Deadline-Ms header") from None
            if requested <= 0:
                raise ServiceError("X-Repro-Deadline-Ms must be positive")
            deadline = requested if deadline is None else min(deadline, requested)
        return deadline

    async def _solve(
        self, body: bytes, headers: Mapping[str, str]
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        self.metrics.record_request()
        deadline = self._deadline_for(headers)
        # Admission control *before* any work: a shed request must be cheap,
        # that is the whole point of shedding.
        if self.max_queue and self.batcher.queue_depth() >= self.max_queue:
            self.metrics.record_rejected()
            retry = [("Retry-After", str(self._retry_after()))]
            return 429, _JSON + retry, _dumps(
                {"error": "server overloaded; retry later", "retry_after": retry[0][1]}
            )
        # Validation is off-loop: a first hit on a `file:` scenario
        # fingerprints and ingests the dataset, which must not stall every
        # other connection (health probes included) for the parse duration.
        request = await asyncio.get_running_loop().run_in_executor(
            None, parse_solve_request, body
        )
        started = time.perf_counter()
        submission = self.batcher.submit(request_point(request))
        try:
            if deadline is not None:
                result = await asyncio.wait_for(submission, deadline)
            else:
                result = await submission
        except asyncio.TimeoutError:
            self.metrics.record_timeout()
            return 504, _JSON, _dumps(
                {"error": f"deadline of {deadline * 1000:.0f} ms exceeded"}
            )
        payload = render_response(request, result)
        self.metrics.record_response(
            request.algorithm, time.perf_counter() - started, cached=result.cached
        )
        headers_out = _JSON + [("X-Repro-Cache", "hit" if result.cached else "miss")]
        return 200, headers_out, payload

    async def _worker_call(
        self, path: str, body: bytes
    ) -> tuple[int, list[tuple[str, str]], bytes]:
        """One distributed-protocol call against this worker's state."""
        from ..distributed.protocol import WorkerProtocolError

        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError:
            raise ServiceError("request body must be JSON") from None
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        state = self.worker_state
        sweep = payload.get("sweep")
        loop = asyncio.get_running_loop()
        try:
            if path == "/register":
                result = state.register(sweep)
            elif path == "/pull":
                points = payload.get("points")
                if not isinstance(points, list):
                    raise ServiceError("'points' must be a list")
                # Decoding imports experiment modules on first use — keep
                # that off the event loop like /solve's request parsing.
                result = await loop.run_in_executor(None, state.pull, sweep, points)
            else:
                acked = payload.get("acked") or []
                if not isinstance(acked, list):
                    raise ServiceError("'acked' must be a list")
                result = await loop.run_in_executor(None, state.collect, sweep, acked)
        except WorkerProtocolError as exc:
            raise ServiceError(str(exc)) from exc
        return 200, _JSON, _dumps(result)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader), self.read_timeout
                    )
                except asyncio.TimeoutError:
                    # Slow-loris (or an idle keep-alive connection): answer
                    # best-effort and drop — the read deadline covers one
                    # whole request, so a trickling client cannot pin a
                    # connection open forever.
                    writer.write(
                        _render_http(408, _JSON, _dumps({"error": "request timeout"}), False)
                    )
                    await writer.drain()
                    break
                except ServiceError as exc:
                    # Unparseable wire data: answer once, then drop the
                    # connection (the stream position is unreliable now).
                    self.metrics.record_error()
                    body = _dumps({"error": str(exc)})
                    writer.write(_render_http(exc.status, _JSON, body, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                # Count the request while it is being answered (not while
                # the keep-alive connection idles on a read) so graceful
                # shutdown can wait for exactly the in-flight work.
                self._active_requests += 1
                try:
                    status, extra, payload = await self.handle(method, path, body, headers)
                    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                    writer.write(_render_http(status, extra, payload, keep_alive))
                    await writer.drain()
                finally:
                    self._active_requests -= 1
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Event-loop shutdown with the connection parked on a read: end
            # quietly — re-raising makes asyncio's streams callback log a
            # spurious traceback for every open keep-alive connection.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.Server:
        """Bind the server and start the batcher; returns the asyncio server."""
        self.batcher.start()
        if self.worker_state is not None:
            self.worker_state.start()
        return await asyncio.start_server(self._handle_connection, host, port)

    async def drain(self, timeout: float = 30.0) -> bool:
        """Finish in-flight requests and queued work (graceful shutdown).

        Waits for every request currently being answered, everything the
        batcher has queued or executing, and — in worker mode — every
        pulled point still in the worker queue.  Idle keep-alive
        connections do not count as in-flight.  Returns ``False`` if the
        timeout elapsed with work still outstanding.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        while self._active_requests > 0 or self.batcher.queue_depth() > 0:
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        if self.worker_state is not None:
            remaining = max(0.05, deadline - loop.time())
            return await loop.run_in_executor(
                None, self.worker_state.drain, remaining
            )
        return True

    async def aclose(self) -> None:
        if self.worker_state is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.worker_state.close
            )
        await self.batcher.aclose()


# --------------------------------------------------------------------------- #
# Wire helpers
# --------------------------------------------------------------------------- #
def _dumps(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _render_http(
    status: int, headers: list[tuple[str, str]], body: bytes, keep_alive: bool
) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}"]
    lines += [f"{name}: {value}" for name, value in headers]
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except ValueError:
        raise ServiceError("malformed request line", status=400) from None
    headers: dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        # The stream position after a malformed chunked body is unknowable;
        # refuse up front rather than risk desyncing a keep-alive stream.
        raise ServiceError(
            "chunked transfer encoding is not supported; send Content-Length",
            status=411,
        )
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ServiceError("invalid Content-Length header", status=400) from None
    if length < 0:
        raise ServiceError("invalid Content-Length header", status=400)
    if length > _MAX_BODY:
        raise ServiceError("request body too large", status=413)
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


# --------------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------------- #
class ServiceHandle:
    """A service running on a background thread (tests, benchmarks).

    Use as a context manager::

        with start_in_background(backend="batch") as handle:
            http.client.HTTPConnection("127.0.0.1", handle.port) ...
    """

    def __init__(self, service: SolverService, host: str) -> None:
        self.service = service
        self.host = host
        self.port: int | None = None
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await self.service.start(self.host, 0)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            await self.service.aclose()

    def start(self, timeout: float = 30.0) -> "ServiceHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service failed to start in time")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed: stop() is idempotent
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_in_background(host: str = "127.0.0.1", **service_kwargs: Any) -> ServiceHandle:
    """Start a :class:`SolverService` on a daemon thread; returns its handle."""
    return ServiceHandle(SolverService(**service_kwargs), host)


async def _serve_async(
    service: SolverService, host: str, port: int, *, drain_timeout: float = 30.0
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    handled: list[int] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            handled.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            # No signal support here (Windows loop, non-main thread):
            # KeyboardInterrupt handling in serve() still applies.
            pass
    server = await service.start(host, port)
    bound = server.sockets[0].getsockname()
    label = "worker" if service.worker_state is not None else "service"
    print(f"repro {label} listening on http://{bound[0]}:{bound[1]}", flush=True)
    try:
        async with server:
            await stop.wait()
            # Graceful shutdown: stop accepting, let in-flight requests and
            # queued work finish, then fall through to aclose().
            server.close()
            print(f"repro {label} draining", flush=True)
            drained = await service.drain(timeout=drain_timeout)
            state = "drained" if drained else "drain timed out"
            print(f"repro {label} {state}; stopped", flush=True)
    finally:
        for sig in handled:
            loop.remove_signal_handler(sig)
        await service.aclose()


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    drain_timeout: float = 30.0,
    **service_kwargs: Any,
) -> int:
    """Blocking entry point used by ``repro serve``; returns an exit code.

    SIGTERM and SIGINT trigger a graceful shutdown: the listener closes,
    in-flight requests and queued batcher (and worker) work drain for up to
    ``drain_timeout`` seconds, then the process exits 0.
    """
    service = SolverService(**service_kwargs)
    try:
        asyncio.run(_serve_async(service, host, port, drain_timeout=drain_timeout))
    except KeyboardInterrupt:
        print("repro service stopped", flush=True)
    return 0
