"""Solve-request protocol: parsing, validation, and canonical rendering.

A solve request is a JSON object::

    {"algorithm": "matching",            # or any name in ALGORITHMS / fig1-*
     "scenario": "powerlaw-dense",       # optional; also "file:<path>"
     "params": {"mu": 0.25, "n": 80},    # optional keyword overrides
     "seed": 7,                          # optional, default 0
     "trials": 1}                        # optional, default 1

and maps 1:1 onto a :class:`~repro.backends.SweepPoint` whose function is
the corresponding Figure-1 experiment.  The response is rendered by
:func:`render_response` as *canonical* JSON bytes (sorted keys, fixed
separators), so a response is a pure function of the request: the server,
a cached replay, and a direct in-process :func:`solve_direct` call all
produce byte-identical payloads for the same request.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..backends import SweepPoint, execute_point
from ..backends.base import PointResult, _jsonable, point_signature
from ..backends.cache import record_to_payload
from ..datasets import canonical_scenario_spec, resolve_scenario
from ..experiments.figure1 import FIGURE1_EXPERIMENTS, FIGURE1_WORKLOAD_KINDS

__all__ = [
    "ALGORITHMS",
    "ServiceError",
    "SolveRequest",
    "parse_solve_request",
    "render_response",
    "request_point",
    "request_signature",
    "resolve_algorithm",
    "solve_direct",
]

#: Service algorithm names → Figure-1 experiment registry names.  The raw
#: ``fig1-*`` names are accepted too (they map to themselves).
ALGORITHMS: dict[str, str] = {
    "matching": "fig1-matching",
    "matching-mu0": "fig1-matching-mu0",
    "b-matching": "fig1-b-matching",
    "vertex-cover": "fig1-vertex-cover",
    "set-cover": "fig1-set-cover-f",
    "set-cover-greedy": "fig1-set-cover-greedy",
    "mis": "fig1-mis",
    "maximal-clique": "fig1-maximal-clique",
    "vertex-colouring": "fig1-vertex-colouring",
    "edge-colouring": "fig1-edge-colouring",
}

#: Fields a solve request may carry.
_REQUEST_FIELDS = {"algorithm", "scenario", "params", "seed", "trials"}


class ServiceError(Exception):
    """A request-level failure, carrying the HTTP status it maps onto."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


def resolve_algorithm(name: str) -> str:
    """Map a service algorithm name onto its Figure-1 experiment name."""
    if name in ALGORITHMS:
        return ALGORITHMS[name]
    if name in FIGURE1_EXPERIMENTS:
        return name
    known = sorted(ALGORITHMS) + sorted(FIGURE1_EXPERIMENTS)
    raise ServiceError(f"unknown algorithm {name!r}; choose one of {known}")


@dataclass(frozen=True)
class SolveRequest:
    """A validated solve request (``experiment`` is the resolved fig1 name)."""

    algorithm: str
    experiment: str
    scenario: str | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    trials: int = 1


def _validate_params(experiment: str, params: Mapping[str, Any]) -> dict[str, Any]:
    if not isinstance(params, Mapping):
        raise ServiceError(f"'params' must be a JSON object, not {type(params).__name__}")
    fn = FIGURE1_EXPERIMENTS[experiment]
    allowed = {
        name
        for name, parameter in inspect.signature(fn).parameters.items()
        if parameter.kind == inspect.Parameter.KEYWORD_ONLY and name != "scenario"
    }
    clean: dict[str, Any] = {}
    for key, value in params.items():
        if key not in allowed:
            raise ServiceError(
                f"unknown parameter {key!r} for algorithm {experiment!r}; "
                f"accepted: {sorted(allowed)}"
            )
        clean[str(key)] = value
    return clean


def _validate_scenario(experiment: str, scenario: str | None) -> str | None:
    if scenario is None:
        return None
    if not isinstance(scenario, str) or not scenario:
        raise ServiceError("'scenario' must be a non-empty string")
    try:
        resolved = resolve_scenario(scenario)
        canonical = canonical_scenario_spec(scenario)
    except (ValueError, OSError) as exc:
        raise ServiceError(str(exc)) from exc
    expected = FIGURE1_WORKLOAD_KINDS[experiment]
    if resolved.kind != expected:
        raise ServiceError(
            f"scenario {scenario!r} provides a {resolved.kind} workload but "
            f"{experiment!r} needs {expected}"
        )
    return canonical


def parse_solve_request(payload: bytes | str | Mapping[str, Any]) -> SolveRequest:
    """Parse and validate a solve request; raises :class:`ServiceError` (400)."""
    if isinstance(payload, (bytes, str)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ServiceError("request body must be a JSON object")
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown request field(s) {sorted(unknown)}; accepted: {sorted(_REQUEST_FIELDS)}"
        )
    if "algorithm" not in payload:
        raise ServiceError("request is missing the required 'algorithm' field")
    algorithm = payload["algorithm"]
    if not isinstance(algorithm, str):
        raise ServiceError("'algorithm' must be a string")
    experiment = resolve_algorithm(algorithm)

    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ServiceError("'seed' must be an integer")
    trials = payload.get("trials", 1)
    if isinstance(trials, bool) or not isinstance(trials, int) or trials < 1:
        raise ServiceError("'trials' must be a positive integer")

    params = _validate_params(experiment, payload.get("params") or {})
    scenario = _validate_scenario(experiment, payload.get("scenario"))
    return SolveRequest(
        algorithm=algorithm,
        experiment=experiment,
        scenario=scenario,
        params=params,
        seed=seed,
        trials=trials,
    )


def request_point(request: SolveRequest) -> SweepPoint:
    """The :class:`SweepPoint` a request maps onto (the cache-key identity).

    The point's seed is the request seed verbatim, so the service, a cached
    replay, and a direct library call on the same request share one
    signature — and therefore one result.
    """
    kwargs = dict(request.params)
    if request.scenario is not None:
        kwargs["scenario"] = request.scenario
    return SweepPoint(
        experiment=request.experiment,
        fn=FIGURE1_EXPERIMENTS[request.experiment],
        kwargs=kwargs,
        seed=request.seed,
        trials=request.trials,
    )


def render_response(request: SolveRequest, result: PointResult) -> bytes:
    """Render a solve response as canonical JSON bytes.

    Sorted keys and fixed separators make the bytes a pure function of the
    request and its records; ``result.cached`` is deliberately *excluded*
    (it travels in the ``X-Repro-Cache`` header instead) so cached replays
    stay byte-identical to fresh computations.
    """
    payload = {
        "algorithm": request.algorithm,
        "experiment": request.experiment,
        "scenario": request.scenario,
        "params": _jsonable(dict(request.params)),
        "seed": request.seed,
        "trials": request.trials,
        "records": [record_to_payload(record) for record in result.records],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def solve_direct(request: SolveRequest) -> bytes:
    """The golden path: evaluate the request in-process and render it.

    ``repro serve`` responses are required to be byte-identical to this for
    the same request — the service may change *where* a request computes,
    never *what* it answers.
    """
    point = request_point(request)
    return render_response(request, execute_point(point))


def request_signature(request: SolveRequest) -> str:
    """Canonical identity of a request (its point's signature)."""
    return point_signature(request_point(request))
