"""Solve-request protocol: the JSON envelope over :mod:`repro.registry`.

A solve request is a JSON object::

    {"algorithm": "matching",            # any registry name or alias
     "scenario": "powerlaw-dense",       # optional; also "file:<path>"
     "params": {"mu": 0.25, "n": 80},    # optional keyword overrides
     "seed": 7,                          # optional, default 0
     "trials": 1}                        # optional, default 1

and maps 1:1 onto the :class:`~repro.registry.SolveRequest` /
:class:`~repro.backends.SweepPoint` that :func:`repro.solve` builds for the
same arguments.  This module only owns the *wire* concerns — JSON decoding,
the envelope field check (derived from the request dataclass itself), and
mapping registry errors onto HTTP statuses.  Name resolution, parameter
validation, point construction, and canonical response rendering all live
in :mod:`repro.registry.solve`, which is what makes a served response
byte-identical to :func:`repro.solve` and the ``repro solve`` CLI for the
same request.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..backends import execute_point
from ..backends.base import PointResult
from ..registry import (
    DeprecatedMapping,
    RegistryError,
    SolveRequest,
    UnknownAlgorithmError,
    build_request,
    canonical_response,
    get_algorithm,
    iter_algorithms,
    request_point,
    request_signature,
)
from ..registry.solve import REQUEST_FIELDS as _REQUEST_FIELDS

__all__ = [
    "ALGORITHMS",
    "ServiceError",
    "SolveRequest",
    "parse_solve_request",
    "render_response",
    "request_point",
    "request_signature",
    "resolve_algorithm",
    "solve_direct",
]

#: Deprecated: the old service-name → Figure-1 experiment dict, now a thin
#: read-only view over the algorithm registry (canonical name → experiment).
ALGORITHMS = DeprecatedMapping(
    "service.api.ALGORITHMS",
    lambda: {spec.name: spec.experiment for spec in iter_algorithms()},
    "resolve names through repro.registry.get_algorithm",
)


class ServiceError(Exception):
    """A request-level failure, carrying the HTTP status it maps onto."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


def resolve_algorithm(name: str) -> str:
    """Map any accepted algorithm name onto its experiment (row) name."""
    try:
        return get_algorithm(name).experiment
    except UnknownAlgorithmError as exc:
        # exc.known is already de-duplicated across names and aliases.
        raise ServiceError(str(exc)) from None


def parse_solve_request(payload: bytes | str | Mapping[str, Any]) -> SolveRequest:
    """Parse and validate a solve request; raises :class:`ServiceError` (400)."""
    if isinstance(payload, (bytes, str)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ServiceError("request body must be a JSON object")
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ServiceError(
            f"unknown request field(s) {sorted(unknown)}; accepted: {sorted(_REQUEST_FIELDS)}"
        )
    if "algorithm" not in payload:
        raise ServiceError("request is missing the required 'algorithm' field")
    try:
        return build_request(
            payload["algorithm"],
            scenario=payload.get("scenario"),
            # No `or {}` fallback: a falsy non-mapping ([], false, 0) must
            # hit the same "params must be a mapping" 400 as any other.
            params=payload.get("params"),
            seed=payload.get("seed", 0),
            trials=payload.get("trials", 1),
        )
    except (RegistryError, ValueError, OSError) as exc:
        raise ServiceError(str(exc)) from exc


def render_response(request: SolveRequest, result: PointResult) -> bytes:
    """Render a solve response as canonical JSON bytes.

    Delegates to :func:`repro.registry.canonical_response`;
    ``result.cached`` is deliberately *excluded* (it travels in the
    ``X-Repro-Cache`` header instead) so cached replays stay byte-identical
    to fresh computations.
    """
    return canonical_response(request, result.records)


def solve_direct(request: SolveRequest) -> bytes:
    """The golden path: evaluate the request in-process and render it.

    ``repro serve`` responses are required to be byte-identical to this for
    the same request — the service may change *where* a request computes,
    never *what* it answers.
    """
    return render_response(request, execute_point(request_point(request)))
