"""The batched solver service: the library's always-on serving layer.

``repro serve`` exposes the Harvey–Liaw–Liu MPC algorithms (local-ratio
matching / b-matching / vertex cover / set cover, hungry greedy set cover,
MIS, maximal clique, colourings) as a stdlib-only asyncio HTTP service.
Concurrent JSON solve requests are micro-batched into a single
:func:`~repro.backends.run_sweep` call per batch, so the serving layer
inherits everything the sweep layer already guarantees: backend-independent
results, duplicate memoisation (``batch``), process fan-out (``mp``), and
idempotent replays through :class:`~repro.backends.ResultCache`.  Responses
are canonical JSON, byte-identical to a direct in-process
:func:`~repro.service.api.solve_direct` call with the same request.

See ``docs/SERVICE.md`` for the request/response schema, the batching
model, and cache semantics.
"""

from .api import (
    ALGORITHMS,
    ServiceError,
    SolveRequest,
    parse_solve_request,
    render_response,
    request_point,
    request_signature,
    resolve_algorithm,
    solve_direct,
)
from .adaptive import AdaptiveBatchPolicy
from .batcher import MicroBatcher
from .histogram import LatencyHistogram
from .metrics import ServiceMetrics
from .server import ServiceHandle, SolverService, serve, start_in_background

__all__ = [
    "ALGORITHMS",
    "AdaptiveBatchPolicy",
    "LatencyHistogram",
    "MicroBatcher",
    "ServiceError",
    "ServiceHandle",
    "ServiceMetrics",
    "SolveRequest",
    "SolverService",
    "parse_solve_request",
    "render_response",
    "request_point",
    "request_signature",
    "resolve_algorithm",
    "serve",
    "solve_direct",
    "start_in_background",
]
