"""Streaming latency histogram with bounded relative error.

Tail latency (p99, p999) is the serving SLO, and it cannot be recovered
from the mean/min/max counters the service used to keep — a histogram has
to observe every sample.  Storing raw samples is out (a load test fires
hundreds of thousands of requests), so :class:`LatencyHistogram` keeps
geometric buckets: values land in bucket ``i`` when ``min_value * f**i <=
v < min_value * f**(i+1)`` with ``f = (1 + error)**2``, and a percentile
query answers the geometric midpoint of the bucket holding the requested
order statistic.  The midpoint is within ``sqrt(f) = 1 + error`` of every
value in the bucket, which gives the estimator its guarantee:

    ``|percentile(q) - exact_q| <= error * exact_q``

for any sample within ``[min_value, max_value]``, where ``exact_q`` is the
order statistic of rank ``ceil(q/100 * count)`` (the smallest sample with
at least a ``q`` fraction of the distribution at or below it).  The
property suite (``tests/property/test_property_loadgen.py``) checks this
bound against exact NumPy order statistics on random samples.

Memory is ~1–2k integer buckets for microsecond..hour range at 1% error —
constant per histogram, independent of sample count.  Recording is O(1)
and allocation-free after the first sample in a bucket.

The class is *not* internally locked: :class:`~repro.service.metrics.
ServiceMetrics` guards its histograms with its own lock, and the load
generator merges per-worker histograms after the replay ends.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Fixed-relative-error streaming histogram over positive values."""

    __slots__ = ("error", "min_value", "max_value", "_log_factor", "_buckets",
                 "count", "sum", "min", "max")

    def __init__(
        self,
        *,
        error: float = 0.01,
        min_value: float = 1e-6,
        max_value: float = 3600.0,
    ) -> None:
        if not 0.0 < error < 1.0:
            raise ValueError("error must be in (0, 1)")
        if not 0.0 < min_value < max_value:
            raise ValueError("need 0 < min_value < max_value")
        self.error = float(error)
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        # Bucket growth factor f = (1+error)^2: the geometric midpoint of a
        # bucket is then within a (1+error) ratio of both edges.
        self._log_factor = 2.0 * math.log1p(self.error)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _index(self, value: float) -> int:
        clamped = min(max(value, self.min_value), self.max_value)
        return int(math.log(clamped / self.min_value) / self._log_factor)

    def record(self, value: float) -> None:
        """Record one sample (seconds); non-finite/negative values rejected."""
        if not (value >= 0.0 and math.isfinite(value)):
            raise ValueError(f"latency sample must be finite and >= 0, got {value!r}")
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bucket geometry) into this one."""
        if (other.error, other.min_value) != (self.error, self.min_value):
            raise ValueError("cannot merge histograms with different geometry")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The value at percentile ``q`` in [0, 100], within relative error.

        Returns the geometric midpoint of the bucket containing the sample
        of rank ``ceil(q/100 * count)`` (rank 1 for q=0).  0.0 on an empty
        histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= target:
                midpoint = self.min_value * math.exp((index + 0.5) * self._log_factor)
                # Exact extremes beat the bucket estimate at the edges.
                return min(max(midpoint, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    def snapshot(self) -> dict[str, float]:
        """JSON-ready SLO summary: count/mean/min/max and tail percentiles."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.6f}, "
            f"p99={self.percentile(99.0):.6f})"
        )
