"""Latency-aware adaptive micro-batch control.

The fixed ``(max_batch, max_wait_ms)`` batcher has a built-in tension: a
long wait window amortises solver overhead under load, but taxes every
lone request with the full window; a short window keeps idle latency low
but dissolves batches exactly when saturation needs them.  The
:class:`AdaptiveBatchPolicy` resolves it with two feedback rules evaluated
once per observation window:

* **Latency guard** — when the observed request p99 drifts above
  ``target_p99`` the wait window *shrinks* multiplicatively (down to
  ``min_wait``): a batch that cannot fill quickly stops waiting for
  stragglers, cutting queueing delay at its source.
* **Saturation growth** — when p99 is comfortably below target *and* the
  queue is persistently deeper than the current batch size, the batch size
  and wait window *grow* (up to their caps): the service is saturated and
  bigger batches raise throughput without endangering the SLO.

Both rules are deterministic functions of the observations, so the policy
is unit-testable with synthetic latency streams and a fake clock — no real
timers anywhere.  The batcher feeds it one observation per completed
request (queueing + execution latency, queue depth at completion) and
reads ``batch_size`` / ``wait_seconds`` when collecting the next batch.
"""

from __future__ import annotations

from .histogram import LatencyHistogram

__all__ = ["AdaptiveBatchPolicy"]


class AdaptiveBatchPolicy:
    """Feedback controller for the micro-batcher's (batch size, wait window).

    Parameters
    ----------
    target_p99:
        The latency SLO in seconds; the controller steers the observed
        request p99 below it.
    min_batch / max_batch:
        Bounds for the adaptive batch size; starts at ``max_batch``.
    min_wait / max_wait:
        Bounds for the adaptive wait window (seconds); starts at
        ``initial_wait`` (default ``max_wait``).
    window:
        Observations per control decision.  Small windows react faster;
        large windows smooth bursty noise.
    shrink / grow:
        Multiplicative step factors for the two feedback rules.
    """

    def __init__(
        self,
        *,
        target_p99: float = 0.5,
        min_batch: int = 1,
        max_batch: int = 128,
        initial_batch: int | None = None,
        min_wait: float = 0.0,
        max_wait: float = 0.05,
        initial_wait: float | None = None,
        window: int = 32,
        shrink: float = 0.5,
        grow: float = 1.5,
    ) -> None:
        if target_p99 <= 0:
            raise ValueError("target_p99 must be positive")
        if not 1 <= min_batch <= max_batch:
            raise ValueError("need 1 <= min_batch <= max_batch")
        if not 0.0 <= min_wait <= max_wait:
            raise ValueError("need 0 <= min_wait <= max_wait")
        if window < 1:
            raise ValueError("window must be at least 1")
        if not 0.0 < shrink < 1.0 or grow <= 1.0:
            raise ValueError("need 0 < shrink < 1 and grow > 1")
        self.target_p99 = float(target_p99)
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.min_wait = float(min_wait)
        self.max_wait = float(max_wait)
        self.window = int(window)
        self.shrink = float(shrink)
        self.grow = float(grow)

        self.batch_size = (
            self.max_batch if initial_batch is None
            else min(max(int(initial_batch), self.min_batch), self.max_batch)
        )
        self.wait_seconds = (
            self.max_wait if initial_wait is None
            else min(max(float(initial_wait), self.min_wait), self.max_wait)
        )
        self.adjustments = 0  #: control decisions taken (for /metrics)
        self._window_latency = LatencyHistogram()
        self._depth_sum = 0
        self._observations = 0

    # ------------------------------------------------------------------ #
    # Feedback
    # ------------------------------------------------------------------ #
    def observe(self, latency_seconds: float, queue_depth: int) -> None:
        """Feed one completed request's latency and the queue depth behind it."""
        self._window_latency.record(max(0.0, latency_seconds))
        self._depth_sum += max(0, int(queue_depth))
        self._observations += 1
        if self._observations >= self.window:
            self._adjust()

    def _adjust(self) -> None:
        p99 = self._window_latency.percentile(99.0)
        mean_depth = self._depth_sum / self._observations
        if p99 > self.target_p99:
            # SLO at risk: stop waiting for stragglers.
            self.wait_seconds = max(self.min_wait, self.wait_seconds * self.shrink)
            if p99 > 2.0 * self.target_p99:
                # Badly over: the batch execution time itself is the tax.
                self.batch_size = max(self.min_batch, self.batch_size // 2)
        elif mean_depth > self.batch_size and p99 < 0.5 * self.target_p99:
            # Saturated but healthy: bigger batches buy throughput.
            self.batch_size = min(
                self.max_batch, max(self.batch_size + 1, int(self.batch_size * self.grow))
            )
            self.wait_seconds = min(
                self.max_wait, max(self.wait_seconds * self.grow, 1e-4)
            )
        else:
            # Healthy and keeping up: drift the window back up gently so a
            # past shrink does not pin batching off forever.
            self.wait_seconds = min(
                self.max_wait, max(self.wait_seconds, 1e-4) * (1.0 + (self.grow - 1.0) / 4)
            )
        self.adjustments += 1
        self._window_latency = LatencyHistogram()
        self._depth_sum = 0
        self._observations = 0

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, float]:
        """JSON-ready controller state for ``/metrics``."""
        return {
            "target_p99": self.target_p99,
            "batch_size": self.batch_size,
            "wait_seconds": self.wait_seconds,
            "adjustments": self.adjustments,
        }
