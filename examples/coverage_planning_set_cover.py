#!/usr/bin/env python
"""Scenario: choosing representative subsets (weighted set cover), both regimes.

Selecting a cheap collection of "sets" that covers a ground set is the
abstraction behind data-summarization and monitoring-placement tasks the
paper cites (Section 1, Section 4).  The paper gives two complementary
algorithms, and this example exercises both on the regime each targets:

* **Monitoring placement, n ≪ m** — few candidate monitor locations
  (sets), a huge number of events to observe (elements), each observable
  from at most ``f`` locations.  Algorithm 1's ``f``-approximation
  (Theorem 2.4) applies.
* **Content tagging, m ≪ n** — a moderate universe of topics (elements) and
  a very large pool of candidate documents (sets), each covering a handful
  of topics at a licensing cost.  Algorithm 3's ``(1+ε)·ln ∆``
  approximation (Theorem 4.6) applies.

Both runs are validated against an LP lower bound and compared with
Chvátal's sequential greedy.

Run with:  python examples/coverage_planning_set_cover.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis import format_table, harmonic, set_cover_f_bound, set_cover_greedy_bound
from repro.baselines import greedy_set_cover, lp_set_cover_bound


def monitoring_placement(rng: np.random.Generator) -> None:
    print("=== Regime 1: monitoring placement (n ≪ m, bounded frequency f) ===")
    num_locations, num_events, f, mu = 80, 4000, 4, 0.3
    instance = repro.random_frequency_bounded_instance(
        num_locations, num_events, f, rng, weight_range=(1.0, 25.0)
    )
    result, metrics = repro.mpc_weighted_set_cover(instance, mu, rng)
    assert repro.is_cover(instance, result.chosen_sets)
    lp = lp_set_cover_bound(instance)
    greedy = greedy_set_cover(instance)
    bound = set_cover_f_bound(num_locations, num_events, instance.frequency, mu)

    rows = [
        ["LP lower bound", lp, "-", "-"],
        [
            f"randomized local ratio (f={instance.frequency})",
            result.weight,
            metrics.num_rounds,
            f"{result.weight / lp:.2f} ≤ f={instance.frequency}",
        ],
        ["Chvátal greedy (sequential)", greedy.weight, "-", f"{greedy.weight / lp:.2f}"],
    ]
    print(format_table(["method", "cost", "rounds", "ratio vs LP"], rows))
    print(
        f"Selected {len(result.chosen_sets)}/{num_locations} locations covering "
        f"{num_events} events; theorem predicts O((c/µ)²) ≈ {bound.rounds:.1f} "
        f"sampling iterations, measured {metrics.notes['sampling_iterations']}.\n"
    )


def content_tagging(rng: np.random.Generator) -> None:
    print("=== Regime 2: content tagging (m ≪ n, greedy algorithm) ===")
    num_documents, num_topics, mu, epsilon = 600, 80, 0.4, 0.2
    instance = repro.random_coverage_instance(
        num_documents, num_topics, rng, density=0.05, weight_range=(1.0, 8.0)
    )
    result, metrics = repro.mpc_greedy_set_cover(instance, mu, rng, epsilon=epsilon)
    assert repro.is_cover(instance, result.chosen_sets)
    lp = lp_set_cover_bound(instance)
    greedy = greedy_set_cover(instance)
    bound = set_cover_greedy_bound(
        num_documents, num_topics, instance.max_set_size, mu, epsilon, instance.weight_ratio
    )

    rows = [
        ["LP lower bound", lp, "-", "-"],
        [
            f"hungry-greedy ε-greedy (ε={epsilon})",
            result.weight,
            metrics.num_rounds,
            f"{result.weight / lp:.2f} ≤ (1+ε)H_∆={bound.approximation:.2f}",
        ],
        ["Chvátal greedy (sequential)", greedy.weight, "-", f"{greedy.weight / lp:.2f}"],
    ]
    print(format_table(["method", "licensing cost", "rounds", "ratio vs LP"], rows))
    print(
        f"Selected {len(result.chosen_sets)}/{num_documents} documents covering "
        f"{num_topics} topics (∆={instance.max_set_size}, "
        f"H_∆={harmonic(instance.max_set_size):.2f}); "
        f"{metrics.notes['inner_iterations']} inner iterations, "
        f"{metrics.num_rounds} MapReduce rounds."
    )


def main(seed: int = 2) -> None:
    rng = np.random.default_rng(seed)
    monitoring_placement(rng)
    content_tagging(rng)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
