#!/usr/bin/env python
"""Quickstart: run each of the paper's algorithms on a small synthetic graph.

This script walks through the public API end to end:

1. generate a densified graph ``m = n^{1+c}`` (the paper's workload regime);
2. run the randomized local ratio algorithms (weighted vertex cover,
   weighted matching, weighted b-matching) on the MPC simulator;
3. run the hungry-greedy algorithms (maximal independent set, maximal
   clique, greedy weighted set cover);
4. run the constant-round vertex and edge colouring algorithms;
5. print, for every algorithm, the objective value, the number of MapReduce
   rounds, and the maximum space any machine used — the three quantities of
   the paper's Figure 1.

Run with:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis import format_table


def main(seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    n, c, mu = 150, 0.45, 0.25
    print(f"Building a weighted graph with n={n} vertices and m=n^(1+{c}) edges …")
    graph = repro.densified_graph(n, c, rng, weights="uniform", weight_range=(1.0, 100.0))
    vertex_weights = rng.uniform(1.0, 20.0, size=n)
    print(f"  -> {graph.num_vertices} vertices, {graph.num_edges} edges, ∆={graph.max_degree()}\n")

    rows: list[list[object]] = []

    # ----------------------------------------------------------------- #
    # Randomized local ratio (Section 2 / 5 / Appendix D)
    # ----------------------------------------------------------------- #
    cover, metrics = repro.mpc_weighted_vertex_cover(graph, vertex_weights, mu, rng)
    assert repro.is_vertex_cover(graph, cover.chosen_sets)
    rows.append(
        ["weighted vertex cover (Thm 2.4)", f"weight={cover.weight:.1f}",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    matching, metrics = repro.mpc_weighted_matching(graph, mu, rng)
    assert repro.is_matching(graph, matching.edge_ids)
    rows.append(
        ["weighted matching (Thm 5.6)", f"weight={matching.weight:.1f}",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    b_matching, metrics = repro.mpc_weighted_b_matching(graph, 3, mu, rng, epsilon=0.1)
    assert repro.is_b_matching(graph, b_matching.edge_ids, 3)
    rows.append(
        ["weighted 3-matching (Thm D.3)", f"weight={b_matching.weight:.1f}",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    # ----------------------------------------------------------------- #
    # Hungry-greedy (Section 3 / 4 / Appendices A, B)
    # ----------------------------------------------------------------- #
    mis, metrics = repro.mpc_maximal_independent_set(graph, mu, rng)
    assert repro.is_maximal_independent_set(graph, mis.vertices)
    rows.append(
        ["maximal independent set (Thm A.3)", f"size={mis.size}",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    clique, metrics = repro.mpc_maximal_clique(graph, mu, rng)
    assert repro.is_maximal_clique(graph, clique.vertices)
    rows.append(
        ["maximal clique (Cor B.1)", f"size={clique.size}",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    instance = repro.random_coverage_instance(300, 60, rng, density=0.06)
    greedy_cover, metrics = repro.mpc_greedy_set_cover(instance, 0.4, rng, epsilon=0.2)
    assert repro.is_cover(instance, greedy_cover.chosen_sets)
    rows.append(
        ["greedy weighted set cover (Thm 4.6)", f"weight={greedy_cover.weight:.1f}",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    # ----------------------------------------------------------------- #
    # Colouring (Section 6)
    # ----------------------------------------------------------------- #
    vcolouring, metrics = repro.mpc_vertex_colouring(graph, 0.2, rng)
    assert repro.is_proper_vertex_colouring(graph, vcolouring.colours)
    rows.append(
        ["vertex colouring (Thm 6.4)",
         f"{vcolouring.num_colours} colours (∆={graph.max_degree()})",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    ecolouring, metrics = repro.mpc_edge_colouring(graph, 0.2, rng)
    assert repro.is_proper_edge_colouring(graph, ecolouring.colours)
    rows.append(
        ["edge colouring (Thm 6.6)",
         f"{ecolouring.num_colours} colours (∆={graph.max_degree()})",
         metrics.num_rounds, metrics.max_space_per_machine]
    )

    print(format_table(["algorithm", "solution", "MapReduce rounds", "max words/machine"], rows))
    print("\nAll solutions passed their independent certificate checks.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
