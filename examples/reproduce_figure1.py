#!/usr/bin/env python
"""Reproduce Figure 1 of the paper on laptop-scale synthetic workloads.

For every Figure-1 row attributed to the paper this script runs the
corresponding experiment (the same ones the benchmark harness uses), prints
a measured counterpart of the table — approximation ratio achieved, measured
MapReduce rounds, measured maximum words per machine — next to the
theoretical guarantee, and flags any violation.

Run with:  python examples/reproduce_figure1.py [seed] [--trials N]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis import format_table
from repro.experiments import aggregate_records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("seed", nargs="?", type=int, default=2018)
    parser.add_argument("--trials", type=int, default=2, help="repetitions per row")
    args = parser.parse_args()

    rows: list[list[object]] = []
    for spec in repro.iter_algorithms():
        name = spec.experiment
        result = repro.solve(spec.name, seed=args.seed, trials=args.trials)
        record = aggregate_records(result.records)
        ratio_key = next(
            (k for k in ("ratio_vs_optimal", "ratio_vs_lp", "colours_over_delta") if k in record.metrics),
            None,
        )
        guarantee = record.bounds.get("approximation") or record.bounds.get("colours")
        rows.append(
            [
                name,
                "OK" if record.valid else "INVALID",
                f"{record.metrics[ratio_key]:.3f}" if ratio_key else "-",
                f"{guarantee:.2f}" if guarantee else "-",
                f"{record.metrics['rounds']:.0f}",
                f"{record.bounds.get('rounds', float('nan')):.1f}",
                f"{record.metrics['max_space_per_machine']:.0f}",
            ]
        )
        print(f"· {name}: done ({args.trials} trial(s))")

    print()
    print(
        format_table(
            [
                "experiment",
                "valid",
                "measured ratio",
                "guarantee",
                "rounds",
                "O(rounds) term",
                "max words/machine",
            ],
            rows,
        )
    )
    print(
        "\nNotes: 'measured ratio' is vs. an exact optimum or LP bound for covers/"
        "matchings and colours/∆ for colourings; the rounds column counts every "
        "synchronous MapReduce round charged by the simulator (including broadcast "
        "tree levels), while the O(·) term is the leading theoretical expression "
        "without constants."
    )


if __name__ == "__main__":
    main()
