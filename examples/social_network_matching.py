#!/usr/bin/env python
"""Scenario: advertiser–user assignment on a social-network-like graph.

The paper's introduction motivates MapReduce algorithms with graph
optimization on social networks whose edge counts follow the densification
law ``m = n^{1+c}`` (Leskovec et al.).  This example models a weighted
assignment problem on such a graph:

* vertices are users/advertisers in a power-law interaction graph;
* the weight of an edge is the expected value of pairing its endpoints
  (e.g. co-promotion value);
* a *matching* pairs entities exclusively; a *b-matching* allows each entity
  to take part in up to ``b`` simultaneous campaigns.

We run the paper's 2-approximate weighted matching (Theorem 5.6) and
``(3 − 2/b + 2ε)``-approximate b-matching (Theorem D.3) on the MPC simulator
and compare against the exact blossom optimum, the classical greedy
2-approximation, and the weight-oblivious filtering baseline of Lattanzi
et al. — the comparison Figure 1 is about.

Run with:  python examples/social_network_matching.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis import format_table, matching_bound
from repro.baselines import exact_matching, filtering_unweighted_matching, greedy_matching


def main(seed: int = 1) -> None:
    rng = np.random.default_rng(seed)
    n, m, mu = 400, 3200, 0.25
    print(f"Generating a power-law interaction graph with n={n}, m={m} …")
    graph = repro.power_law_graph(
        n, m, rng, exponent=2.3, weights="exponential", weight_range=(1.0, 50.0)
    )
    c = graph.densification_exponent()
    print(
        f"  -> ∆={graph.max_degree()}, densification exponent c≈{c:.2f}, "
        f"total pairing value {graph.total_weight():.0f}\n"
    )

    # The paper's algorithm on the simulated cluster.
    result, metrics = repro.mpc_weighted_matching(graph, mu, rng)
    assert repro.is_matching(graph, result.edge_ids)

    # References and baselines.
    exact = exact_matching(graph)
    greedy = greedy_matching(graph)
    filtering = filtering_unweighted_matching(graph, eta=int(n ** (1 + mu)), rng=rng)
    bound = matching_bound(n, graph.num_edges, mu)

    rows = [
        ["exact blossom (reference)", exact.weight, "-", "-"],
        [
            "randomized local ratio (Thm 5.6)",
            result.weight,
            metrics.num_rounds,
            f"{exact.weight / result.weight:.3f} (≤ {bound.approximation:.1f})",
        ],
        ["sequential greedy", greedy.weight, "-", f"{exact.weight / greedy.weight:.3f}"],
        [
            "filtering (unweighted, Lattanzi et al.)",
            filtering.weight,
            len(filtering.iterations),
            f"{exact.weight / filtering.weight:.3f}",
        ],
    ]
    print(format_table(["algorithm", "matched value", "rounds", "ratio vs optimum"], rows))

    print(
        f"\nMPC execution: {metrics.num_rounds} rounds "
        f"({metrics.notes['sampling_iterations']} sampling iterations, "
        f"O(c/µ) = {bound.rounds:.1f}), "
        f"max {metrics.max_space_per_machine} words on any machine "
        f"across {metrics.notes['num_machines']} machines."
    )

    # Campaigns with capacity: each entity may join up to b=3 pairings.
    b = 3
    b_result, b_metrics = repro.mpc_weighted_b_matching(graph, b, mu, rng, epsilon=0.1)
    assert repro.is_b_matching(graph, b_result.edge_ids, b)
    print(
        f"\nWith per-entity capacity b={b}: total value {b_result.weight:.0f} "
        f"({len(b_result.edge_ids)} pairings) in {b_metrics.num_rounds} rounds — "
        f"{b_result.weight / result.weight:.2f}× the 1-matching value."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
