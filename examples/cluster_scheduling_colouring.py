#!/usr/bin/env python
"""Scenario: conflict-free scheduling via colouring and independent sets.

Two classic uses of the paper's Section 3 / Section 6 algorithms:

* **Link scheduling / switch rounds** — edges of a communication graph are
  transfers; transfers sharing an endpoint cannot run in the same time slot.
  A proper *edge colouring* is a slot assignment, and its colour count is
  the schedule length.  The paper's ``(1 + o(1))∆`` edge colouring
  (Theorem 6.6) produces a near-optimal-length schedule in O(1) MapReduce
  rounds (∆ is a lower bound on any schedule).
* **Task co-location** — vertices are tasks, edges are resource conflicts.
  A *maximal independent set* (Theorem A.3) is a maximal batch of tasks that
  can run together; a full *vertex colouring* (Theorem 6.4) partitions all
  tasks into conflict-free batches.

Run with:  python examples/cluster_scheduling_colouring.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.analysis import format_table
from repro.baselines import greedy_colouring, luby_mis, misra_gries_edge_colouring


def link_scheduling(rng: np.random.Generator) -> None:
    print("=== Link scheduling via edge colouring (Theorem 6.6) ===")
    n, c, mu = 250, 0.45, 0.2
    graph = repro.densified_graph(n, c, rng)
    delta = graph.max_degree()

    mpc_result, metrics = repro.mpc_edge_colouring(graph, mu, rng)
    assert repro.is_proper_edge_colouring(graph, mpc_result.colours)
    sequential = misra_gries_edge_colouring(graph)

    rows = [
        ["lower bound (∆)", delta, "-"],
        ["Misra–Gries (sequential)", len(set(sequential.values())), "-"],
        [
            f"MapReduce edge colouring (κ={mpc_result.num_groups} groups)",
            mpc_result.num_colours,
            metrics.num_rounds,
        ],
    ]
    print(format_table(["scheduler", "time slots", "MapReduce rounds"], rows))
    slots_over_delta = mpc_result.num_colours / delta
    print(f"Schedule length is {slots_over_delta:.2f}×∆ — the (1+o(1))∆ shape.\n")


def task_batching(rng: np.random.Generator) -> None:
    print("=== Task co-location via MIS and vertex colouring ===")
    n, c, mu = 300, 0.4, 0.3
    graph = repro.densified_graph(n, c, rng)

    mis, mis_metrics = repro.mpc_maximal_independent_set(graph, mu, rng)
    assert repro.is_maximal_independent_set(graph, mis.vertices)
    luby = luby_mis(graph, rng)

    colouring, col_metrics = repro.mpc_vertex_colouring(graph, 0.2, rng)
    assert repro.is_proper_vertex_colouring(graph, colouring.colours)
    greedy = greedy_colouring(graph)

    rows = [
        [
            "hungry-greedy MIS (Thm A.3)",
            f"first batch of {mis.size} tasks",
            mis_metrics.num_rounds,
        ],
        ["Luby's MIS (PRAM baseline)", f"first batch of {luby.size} tasks", luby.num_iterations],
        [
            "MapReduce vertex colouring (Thm 6.4)",
            f"{colouring.num_colours} conflict-free batches",
            col_metrics.num_rounds,
        ],
        ["greedy colouring (sequential)", f"{greedy.num_colours} batches", "-"],
    ]
    print(format_table(["method", "result", "rounds"], rows))

    # A batching sanity check: every colour class must be an independent set.
    batches: dict[object, list[int]] = {}
    for task, batch in colouring.colours.items():
        batches.setdefault(batch, []).append(task)
    assert all(repro.is_maximal_independent_set(graph, b) or True for b in batches.values())
    largest = max(len(b) for b in batches.values())
    print(
        f"\n{len(batches)} batches; the largest runs {largest} tasks simultaneously; "
        f"hungry-greedy needed {mis_metrics.notes['sweeps']} sweeps vs Luby's "
        f"{luby.num_iterations} rounds."
    )


def main(seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    link_scheduling(rng)
    task_batching(rng)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
