#!/usr/bin/env python
"""Run the paper's experiments on your own graph, end to end.

This script walks the dataset pipeline (``docs/DATASETS.md``):

1. write a small SNAP-style edge list to disk — stand-in for a real
   dataset you downloaded (gzip also works, the parsers sniff it);
2. ingest it (``repro.load_file``) and convert it into the fast ``.npz``
   instance store (``repro.save_dataset``), checksums and all;
3. load it back (``repro.load_dataset``) — memory-mapped, bitwise
   identical to the parsed original;
4. run Figure-1 experiments on it via a ``file:`` scenario, exactly what
   ``python -m repro figure1 --scenario file:<path>`` does;
5. run a named scenario from the registry for comparison.

Run with:  python examples/run_on_your_graph.py [seed]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.analysis import format_table


def main(seed: int = 0) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-datasets-"))

    # ------------------------------------------------------------------ #
    # 1. A "downloaded" dataset: a SNAP-style edge list with real-world
    #    quirks (comments, gaps in the vertex ids, a duplicate edge).
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(seed)
    source = repro.gnm_graph(60, 240, rng)
    raw_path = workdir / "my-network.txt"
    with open(raw_path, "w") as fh:
        fh.write("# my-network: downloaded edge list (ids are sparse)\n")
        for u, v, _ in source.edges():
            fh.write(f"{10 * u}\t{10 * v}\n")
        fh.write(f"{10 * int(source.edge_u[0])}\t{10 * int(source.edge_v[0])}\n")  # a dupe
    print(f"Wrote a SNAP-style edge list: {raw_path}")

    # ------------------------------------------------------------------ #
    # 2. Ingest + convert into the instance store.
    # ------------------------------------------------------------------ #
    graph, info = repro.load_file(raw_path)
    print(
        f"Parsed: {graph.num_vertices} vertices, {graph.num_edges} edges "
        f"(dropped {info['duplicate_edges_dropped']} duplicate(s); "
        f"relabelled={info['relabelled']})"
    )
    store_path = workdir / "my-network.npz"
    repro.save_dataset(store_path, graph, name="my-network", source=str(raw_path), extra=info)
    print(f"Converted to the instance store: {store_path}")

    # ------------------------------------------------------------------ #
    # 3. Load it back: memory-mapped and bitwise identical.
    # ------------------------------------------------------------------ #
    loaded = repro.load_dataset(store_path)
    assert loaded.edge_u.tobytes() == graph.edge_u.tobytes()
    assert loaded.edge_v.tobytes() == graph.edge_v.tobytes()
    assert loaded.weights.tobytes() == graph.weights.tobytes()
    print("Store round-trip verified: loaded instance is byte-identical.\n")

    # ------------------------------------------------------------------ #
    # 4. Run Figure-1 experiments on the dataset via a file: scenario.
    # ------------------------------------------------------------------ #
    scenario = f"file:{store_path}"
    records = repro.experiments.run_figure1(
        seed, experiments=["fig1-mis", "fig1-matching", "fig1-vertex-colouring"],
        scenario=scenario,
    )
    rows = [
        [r.experiment, "OK" if r.valid else "INVALID",
         r.metrics.get("rounds", ""), r.metrics.get("max_space_per_machine", "")]
        for r in records
    ]
    assert all(r.valid for r in records), "a certificate check failed"
    print(f"Figure-1 rows on --scenario {scenario}:")
    print(format_table(["experiment", "valid", "rounds", "max space"], rows))

    # ------------------------------------------------------------------ #
    # 5. Named scenarios need no file at all.
    # ------------------------------------------------------------------ #
    social = repro.build_scenario("social-sparse", np.random.default_rng(seed))
    print(
        f"\nNamed scenario 'social-sparse': n={social.num_vertices}, "
        f"m={social.num_edges}, c≈{social.densification_exponent():.3f}"
    )
    print(f"Registered scenarios: {', '.join(repro.scenario_names())}")
    print("\nAll dataset pipeline steps passed.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
