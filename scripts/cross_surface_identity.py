#!/usr/bin/env python
"""Golden cross-surface identity check: library == CLI == live service.

For a sample of algorithms, assert that ``repro.solve()``, the
``repro solve`` CLI subcommand, and a live ``repro serve`` HTTP response
yield **byte-identical** canonical responses for the same
``(scenario, algorithm, params, seed)``.

Usage::

    # against an already-running server (the CI job starts one):
    PYTHONPATH=src python scripts/cross_surface_identity.py --url http://127.0.0.1:8765

    # self-contained (starts an in-process server on a free port):
    PYTHONPATH=src python scripts/cross_surface_identity.py

Exits non-zero on the first mismatch, printing both payloads' prefixes.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402

#: (algorithm, scenario, params, seed) samples across problem kinds.
SAMPLES = [
    ("mis", None, {"n": 36, "c": 0.35}, 5),
    ("matching", None, {"n": 40, "c": 0.4}, 1),
    ("vertex-cover", None, {"n": 40, "c": 0.4}, 2),
    ("set-cover-greedy", None, {"num_sets": 40, "num_elements": 20}, 3),
    ("mis", "powerlaw-dense", None, 4),
]


def cli_solve(algorithm: str, scenario: str | None, params: dict | None, seed: int) -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, "-m", "repro", "solve", algorithm, "--seed", str(seed)]
    if scenario:
        command += ["--scenario", scenario]
    for key, value in (params or {}).items():
        command += ["--param", f"{key}={json.dumps(value)}"]
    completed = subprocess.run(
        command, capture_output=True, env=env, cwd=str(REPO_ROOT), timeout=600
    )
    # Exit code 1 means "solved but the certificate check failed" — the
    # canonical bytes are still printed and still comparable; anything
    # else (or an empty body) is a genuine CLI failure.
    if completed.returncode not in (0, 1) or not completed.stdout:
        raise SystemExit(
            f"CLI solve failed (exit {completed.returncode}):\n"
            f"{completed.stderr.decode()}"
        )
    return completed.stdout.rstrip(b"\n")


def http_solve(url: str, body: dict) -> bytes:
    request = urllib.request.Request(
        url.rstrip("/") + "/solve",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return response.read()


def wait_for(url: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            with urllib.request.urlopen(url.rstrip("/") + "/healthz", timeout=5):
                return
        except (urllib.error.URLError, OSError):
            if time.monotonic() > deadline:
                raise SystemExit(f"no server answered at {url} within {timeout}s")
            time.sleep(0.5)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running `repro serve` (default: start one in-process)",
    )
    args = parser.parse_args()

    handle = None
    if args.url is None:
        from repro.service import start_in_background

        handle = start_in_background(backend="batch").start()
        args.url = f"http://127.0.0.1:{handle.port}"
    else:
        wait_for(args.url)

    failures = 0
    try:
        for algorithm, scenario, params, seed in SAMPLES:
            label = f"{algorithm}" + (f" @ {scenario}" if scenario else "")
            library = repro.solve(
                algorithm, scenario, params=params, seed=seed
            ).canonical_json()
            cli = cli_solve(algorithm, scenario, params, seed)
            body: dict = {"algorithm": algorithm, "seed": seed}
            if scenario:
                body["scenario"] = scenario
            if params:
                body["params"] = params
            served = http_solve(args.url, body)
            for surface, payload in (("CLI", cli), ("service", served)):
                if payload != library:
                    failures += 1
                    print(f"MISMATCH [{label}] {surface} != library")
                    print(f"  library: {library[:120]!r}...")
                    print(f"  {surface:>7}: {payload[:120]!r}...")
            if cli == library == served:
                print(f"OK [{label}] {len(library)} canonical bytes on all three surfaces")
    finally:
        if handle is not None:
            handle.stop()

    if failures:
        print(f"{failures} cross-surface mismatch(es)")
        return 1
    print("cross-surface identity holds: repro.solve() == `repro solve` == repro serve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
