#!/usr/bin/env python
"""Distributed-backend smoke check: coordinator + real worker processes.

Three gates, each against real ``repro worker`` subprocesses on loopback:

1. **Byte-identity** — a sweep of real Figure-1 experiment points sharded
   across two workers must produce record payloads byte-identical to
   serial execution, in input order.
2. **Worker kill mid-sweep** — SIGKILL one of the workers while the sweep
   is running; the coordinator must declare it dead, requeue its
   outstanding points onto the survivor, and the assembled results must
   *still* be byte-identical to serial.
3. **Real MPC round** — one :meth:`MPCContext.map_round` executes across
   the worker processes (``SweepRoundExecutor`` over the distributed
   backend); its outputs and round accounting must match in-process
   execution, and the workers' ``/metrics`` must report the round under
   the ``distributed.mpc`` key.

Usage::

    PYTHONPATH=src python scripts/distributed_smoke.py

Exits non-zero on the first violated gate.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backends import DistributedBackend, SerialBackend, SweepPoint  # noqa: E402
from repro.backends.cache import record_to_payload  # noqa: E402
from repro.distributed import Coordinator  # noqa: E402
from repro.experiments.figure1 import mis_experiment, vertex_cover_experiment  # noqa: E402
from repro.mapreduce import SweepRoundExecutor, distributed_degree_count  # noqa: E402


def start_worker() -> tuple[subprocess.Popen, str]:
    """Start a ``repro worker`` subprocess on a free port; returns (proc, addr)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = re.search(r"listening on http://([\d.]+):(\d+)", line)
    if match is None:
        proc.kill()
        raise SystemExit(f"worker did not start: {line!r}")
    return proc, f"{match.group(1)}:{match.group(2)}"


def payloads(results) -> list[list[dict]]:
    return [[record_to_payload(record) for record in result.records] for result in results]


def sweep_points(count: int, *, n: int) -> list[SweepPoint]:
    """Real Figure-1 experiment points, alternating algorithms."""
    points = []
    for index in range(count):
        fn = mis_experiment if index % 2 == 0 else vertex_cover_experiment
        name = "fig1-mis" if index % 2 == 0 else "fig1-vertex-cover"
        points.append(
            SweepPoint(name, fn, {"n": n, "c": 0.4}, seed=(2018, index), trials=1)
        )
    return points


def fetch_metrics(address: str) -> dict:
    with urllib.request.urlopen(f"http://{address}/metrics", timeout=30) as response:
        return json.load(response)


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def gate_byte_identity(addresses: list[str]) -> None:
    print("[1/3] distributed sweep vs serial byte-identity")
    points = sweep_points(8, n=60)
    serial = SerialBackend().run(points)
    backend = DistributedBackend(addresses)
    distributed = backend.run(points)
    check(payloads(distributed) == payloads(serial), "record payloads byte-identical")
    check(
        [r.signature for r in distributed] == [r.signature for r in serial],
        "signatures identical, input order kept",
    )
    stats = backend.last_stats or {}
    check(stats.get("workers") == len(addresses), f"sweep used {len(addresses)} workers")


def gate_worker_kill(survivor: str) -> None:
    print("[2/3] worker killed mid-sweep")
    doomed_proc, doomed_addr = start_worker()
    points = sweep_points(10, n=140)  # big enough that the kill lands mid-sweep
    serial = SerialBackend().run(points)
    coordinator = Coordinator(
        [survivor, doomed_addr], max_failures=1, timeout=10.0, poll_interval=0.01
    )

    def kill_once_loaded() -> None:
        # SIGKILL the worker the moment its queue is non-empty, so the kill
        # is guaranteed to land while it still holds undelivered points.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and doomed_proc.poll() is None:
            try:
                stats = fetch_metrics(doomed_addr).get("distributed", {})
            except OSError:
                return
            if stats.get("queued", 0) > 0:
                doomed_proc.send_signal(signal.SIGKILL)
                return
            time.sleep(0.002)

    killer = threading.Thread(target=kill_once_loaded, daemon=True)
    killer.start()
    try:
        distributed = coordinator.run(points)
    finally:
        killer.join(timeout=60)
        if doomed_proc.poll() is None:
            doomed_proc.kill()
        doomed_proc.wait(timeout=30)
    check(payloads(distributed) == payloads(serial), "byte-identical despite the kill")
    stats = coordinator.stats
    if stats.workers_lost:
        check(stats.workers_lost == [doomed_addr], "the killed worker was declared dead")
        print(f"  (requeued {stats.requeued} orphaned points onto the survivor)")
    else:
        # The doomed worker finished its shard inside the kill delay; the
        # identity gate above still holds, which is the load-bearing part.
        print("  (worker finished before the kill landed; identity gate still binding)")


def gate_mpc_round(addresses: list[str]) -> None:
    print("[3/3] real MPC round across worker processes")
    edges = [[u, v] for u in range(12) for v in range(u + 1, 12) if (u + v) % 3]
    local_degrees, local_metrics = distributed_degree_count(edges, num_machines=2)
    executor = SweepRoundExecutor(backend=DistributedBackend(addresses))
    degrees, metrics = distributed_degree_count(edges, num_machines=2, executor=executor)
    check(degrees == local_degrees, "distributed round output equals in-process")
    check(
        [(r.description, r.max_machine_words, r.words_communicated) for r in metrics.rounds]
        == [(r.description, r.max_machine_words, r.words_communicated) for r in local_metrics.rounds],
        "round accounting (loads, communication) identical",
    )
    executed = 0
    for address in addresses:
        distributed_metrics = fetch_metrics(address).get("distributed", {})
        executed += distributed_metrics.get("mpc", {}).get("rounds_executed", 0)
        check(
            distributed_metrics.get("points_executed", 0) > 0,
            f"worker {address} executed points",
        )
    check(executed >= 2, "workers report MPC round shards under /metrics distributed.mpc")


def main() -> int:
    workers: list[tuple[subprocess.Popen, str]] = []
    try:
        workers = [start_worker(), start_worker()]
        addresses = [address for _, address in workers]
        print(f"workers: {addresses}")
        gate_byte_identity(addresses)
        gate_worker_kill(addresses[0])
        gate_mpc_round(addresses)
        print("distributed smoke: all gates passed")
        return 0
    finally:
        for proc, _ in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc, _ in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
